"""Protocol Disperse — asynchronous verifiable information dispersal.

The register protocols store values with the (slightly modified) dispersal
protocol of the AVID-RBC scheme of Cachin and Tessaro (Section 2.3 and
Appendix A of the paper).  A client *disperses* a value ``F``; each honest
server ``P_j`` *completes* the dispersal with ``[D, i, F_j]`` where ``D``
commits to the encoded blocks, ``i`` identifies the dispersing client, and
``F_j`` is ``P_j``'s own erasure-code block.  Guarantees (except with
negligible probability):

* all honest servers complete with the *same* commitment ``D``;
* there exists a value ``F'`` whose encoding matches ``D`` exactly, and
  every completing server's block equals the corresponding block of
  ``F'`` — so a Byzantine client can never store inconsistent data
  (*verifiability*, checked at write time rather than read time);
* if the client is honest, ``F' = F`` and every honest server eventually
  completes; if *any* honest server completes, all honest servers
  eventually complete (*agreement*), whatever the client does.

Protocol shape (echo/ready a la Bracha, with blocks riding along):

1. The client encodes ``F``, commits to the blocks, and sends
   ``(send, D, F_j, w_j)`` to each ``P_j``.
2. On a valid ``send``, ``P_j`` sends ``(echo, D, i, F_j, w_j)`` to all
   servers (one echo per instance, binding ``P_j`` to one commitment).
3. On ``n - t`` valid echoes for the same ``(D, i)``, a server decodes a
   candidate value from ``k`` blocks, re-encodes it, and checks the fresh
   commitment equals ``D`` (the *verifiability* check).  Only then does it
   send ``ready``.  On ``t + 1`` readys it sends ``ready`` without the
   check (Bracha amplification — some honest server has checked).
4. A ``ready`` from a server that holds the full re-encoded vector is
   *personalized*: the copy sent to ``P_i`` carries ``P_i``'s block and
   witness.  This lets servers that never received a valid ``send`` (a
   Byzantine client may withhold them) obtain their block, which makes the
   agreement property hold for every ``k <= n - t``.
5. On ``2t + 1`` readys for ``(D, i)`` and possession of a valid own
   block, the server completes.

With ``k <= n - t`` and blocks of ``|F| / k`` bytes, the dispersal's
communication is ``O(n |F|)`` plus ``O(n^3 |H|)`` with hash vectors or
``O(n^2 log n |H|)`` with Merkle commitments, matching Section 2.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.common.ids import PartyId
from repro.common.serialization import encode, encoded_size
from repro.config import SystemConfig
from repro.net.message import Message
from repro.net.process import Process

MSG_SEND = "avid-send"
MSG_ECHO = "avid-echo"
MSG_READY = "avid-ready"

#: every wire message type of Protocol Disperse, for observability
#: tooling (per-mtype instruments, phase classification)
MESSAGE_TYPES = (MSG_SEND, MSG_ECHO, MSG_READY)

#: deliver(tag, commitment, client, block, witness)
CompleteCallback = Callable[[str, Any, PartyId, bytes, Any], None]


def disperse(process: Process, tag: str, value: bytes,
             config: SystemConfig) -> None:
    """Client side of Protocol Disperse: encode, commit, send the blocks.

    Invoked at a client through the input action ``(ID, in, disperse, F)``;
    each server receives only its own block (plus the commitment), which is
    where the ``|F| / k`` per-server storage saving comes from.
    """
    blocks = config.coder.encode(value)
    commitment, witnesses = config.commitment_scheme.commit(blocks)
    for index, server in enumerate(process.simulator.server_pids, start=1):
        process.send(server, tag, MSG_SEND, commitment, blocks[index - 1],
                     witnesses[index - 1])


@dataclass
class _KeyState:
    """Per-(commitment, client) state within one dispersal instance."""

    commitment: Any = None
    client: Optional[PartyId] = None
    echo_blocks: Dict[int, Tuple[bytes, Any]] = field(default_factory=dict)
    ready_senders: Set[PartyId] = field(default_factory=set)
    consistent: Optional[bool] = None
    all_blocks: Optional[list] = None
    all_witnesses: Optional[list] = None
    own_block: Optional[Tuple[bytes, Any]] = None


@dataclass
class _Instance:
    """Per-tag server-side dispersal state.

    Sessions are scoped by *origin* (the dispersing party, bound by the
    channel): ``echoed``/``ready_sent``/``completed`` record the origins
    this server has echoed for, sent ready for, and completed — so a
    Byzantine party racing a bogus ``send`` onto an honest client's tag
    opens its own session instead of blocking the honest one.
    """

    echoed: Set[PartyId] = field(default_factory=set)
    ready_sent: Set[PartyId] = field(default_factory=set)
    completed: Set[PartyId] = field(default_factory=set)
    keys: Dict[bytes, _KeyState] = field(default_factory=dict)


class AvidServer:
    """Server-side component of Protocol Disperse.

    Attach one per server process; ``complete`` is called as
    ``complete(tag, commitment, client, block, witness)`` when the server
    completes a dispersal (the paper's output action
    ``(ID, out, stored, D, i, F_j)``).
    """

    def __init__(self, process: Process, config: SystemConfig,
                 complete: CompleteCallback):
        self._process = process
        self._config = config
        self._complete = complete
        self._instances: Dict[str, _Instance] = {}
        # Quorum thresholds are fixed for the lifetime of the run; caching
        # them as plain ints keeps the per-delivery progress checks cheap.
        self._quorum = config.quorum
        self._ready_amplify = config.ready_amplify
        self._deliver_quorum = config.deliver_quorum
        process.on(MSG_SEND, self._on_send)
        process.on(MSG_ECHO, self._on_echo)
        process.on(MSG_READY, self._on_ready)

    # -- helpers ------------------------------------------------------------

    @property
    def _my_index(self) -> int:
        return self._process.pid.index

    def _instance(self, tag: str) -> _Instance:
        if tag not in self._instances:
            self._instances[tag] = _Instance()
        return self._instances[tag]

    def _key_state(self, instance: _Instance, commitment: Any,
                   client: PartyId) -> _KeyState:
        key = encode((commitment, client))
        if key not in instance.keys:
            instance.keys[key] = _KeyState(commitment=commitment,
                                           client=client)
        return instance.keys[key]

    # -- handlers --------------------------------------------------------------

    def _on_send(self, message: Message) -> None:
        """First valid ``send`` from this origin: echo our block to all.

        Server origins are rejected: only clients disperse in the
        register protocols, so a Byzantine server cannot even open a
        session, let alone hijack one.
        """
        origin = message.sender
        if origin.is_server or len(message.payload) != 3:
            return
        instance = self._instance(message.tag)
        if origin in instance.echoed or origin in instance.completed:
            return
        commitment, block, witness = message.payload
        scheme = self._config.commitment_scheme
        if not scheme.verify(commitment, self._my_index, block, witness):
            return
        instance.echoed.add(origin)
        state = self._key_state(instance, commitment, origin)
        if state.own_block is None:
            state.own_block = (block, witness)
        self._process.send_to_servers(message.tag, MSG_ECHO, commitment,
                                      origin, block, witness)
        # Our own echo comes back through the network like everyone else's.

    def _on_echo(self, message: Message) -> None:
        """Record a valid echo — it carries the echoer's own block."""
        if not message.sender.is_server or len(message.payload) != 4:
            return
        commitment, client, block, witness = message.payload
        if not isinstance(client, PartyId) or client.is_server:
            return
        instance = self._instance(message.tag)
        if client in instance.completed:
            return
        sender_index = message.sender.index
        scheme = self._config.commitment_scheme
        if not scheme.verify(commitment, sender_index, block, witness):
            return
        state = self._key_state(instance, commitment, client)
        if sender_index not in state.echo_blocks:
            state.echo_blocks[sender_index] = (block, witness)
        self._progress(message.tag, instance, state)

    def _on_ready(self, message: Message) -> None:
        """Record a ready; harvest our own block if it is personalized."""
        if not message.sender.is_server or len(message.payload) != 4:
            return
        commitment, client, my_block, my_witness = message.payload
        if not isinstance(client, PartyId) or client.is_server:
            return
        instance = self._instance(message.tag)
        if client in instance.completed:
            return
        # Ready amplification must buffer the (commitment, client) key
        # before this server can verify anything: its own block may only
        # arrive with a later personalized ready.  The buffered state is
        # bounded per key and every block in it is commitment-verified
        # before use, so unverified commitments can waste one _KeyState
        # slot but never reach a decode.
        # lint: disable=taint-unverified-sink
        state = self._key_state(instance, commitment, client)
        state.ready_senders.add(message.sender)
        if state.own_block is None and my_block is not None:
            scheme = self._config.commitment_scheme
            if scheme.verify(commitment, self._my_index, my_block,
                             my_witness):
                state.own_block = (my_block, my_witness)
        self._progress(message.tag, instance, state)

    # -- state machine -------------------------------------------------------------

    def _progress(self, tag: str, instance: _Instance,
                  state: _KeyState) -> None:
        origin = state.client
        if origin not in instance.ready_sent:
            if (len(state.echo_blocks) >= self._quorum
                    and self._check_consistency(state)):
                self._send_ready(tag, instance, state)
            elif len(state.ready_senders) >= self._ready_amplify:
                # Amplification: at least one honest server has verified
                # consistency; try to reconstruct so our ready can carry
                # personalized blocks, but do not require it.
                self._check_consistency(state)
                self._send_ready(tag, instance, state)
        if (origin not in instance.completed
                and len(state.ready_senders) >= self._deliver_quorum):
            if state.own_block is None:
                self._check_consistency(state)
            if state.own_block is not None:
                instance.completed.add(origin)
                block, witness = state.own_block
                commitment = state.commitment
                # Drop this session's buffers; flags persist, so late
                # traffic for the completed session is ignored.
                instance.keys = {
                    key: key_state
                    for key, key_state in instance.keys.items()
                    if key_state.client != origin
                }
                self._complete(tag, commitment, origin, block, witness)

    def _check_consistency(self, state: _KeyState) -> bool:
        """The verifiability check: decode, re-encode, re-commit, compare.

        Caches its verdict.  On success the full re-encoded block vector is
        retained for personalizing readys and for our own block.
        """
        if state.consistent is not None:
            return state.consistent
        coder = self._config.coder
        if len(state.echo_blocks) < coder.k:
            return False
        try:
            candidate = coder.decode(
                (index, block)
                for index, (block, _) in state.echo_blocks.items())
            blocks = coder.encode(candidate)
            commitment, witnesses = \
                self._config.commitment_scheme.commit(blocks)
        except Exception:
            state.consistent = False
            return False
        if encode(commitment) != encode(state.commitment):
            # The client committed to something that is not the encoding
            # of any value: refuse to ever send ready for it.
            state.consistent = False
            return False
        state.consistent = True
        state.all_blocks = blocks
        state.all_witnesses = witnesses
        if state.own_block is None:
            state.own_block = (blocks[self._my_index - 1],
                               witnesses[self._my_index - 1])
        return True

    def _send_ready(self, tag: str, instance: _Instance,
                    state: _KeyState) -> None:
        instance.ready_sent.add(state.client)
        for server in self._process.simulator.server_pids:
            if state.all_blocks is not None:
                block = state.all_blocks[server.index - 1]
                witness = state.all_witnesses[server.index - 1]
            else:
                block, witness = None, None
            self._process.send(server, tag, MSG_READY, state.commitment,
                               state.client, block, witness)

    # -- introspection ----------------------------------------------------------

    def completed(self, tag: str) -> bool:
        """Whether this server completed any dispersal session under
        ``tag``."""
        instance = self._instances.get(tag)
        return bool(instance and instance.completed)

    def storage_bytes(self) -> int:
        """Transient state of in-flight dispersals (echo block buffers)."""
        total = 0
        for instance in self._instances.values():
            for state in instance.keys.values():
                for block, _ in state.echo_blocks.values():
                    total += len(block)
                if state.all_blocks is not None:
                    total += sum(len(block) for block in state.all_blocks)
        return total
