"""Standalone AVID storage service: Disperse + Retrieve as one system.

The paper uses Protocol Disperse inside the register protocols, but the
AVID scheme it comes from is a storage system in its own right (static,
write-once-per-tag, verifiable).  This module packages it that way:
:class:`AvidStorageNode` servers store blocks of completed dispersals and
answer retrievals; :class:`AvidStorageClient` exposes ``disperse`` /
``retrieve`` with operation handles.

Semantics per tag: at most one value can ever complete dispersal (the
echo-binding of Disperse), every honest node eventually stores its block
of it, and every retrieval returns exactly that value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.avid.disperse import AvidServer, disperse
from repro.avid.retrieve import AvidRetrieverClient, AvidStorageServer
from repro.common.ids import PartyId
from repro.config import SystemConfig
from repro.net.process import Process


class AvidStorageNode(Process):
    """A storage server: completes dispersals, stores, serves blocks."""

    def __init__(self, pid: PartyId, config: SystemConfig,
                 initial_value: bytes = b""):
        super().__init__(pid)
        self.config = config
        self.storage = AvidStorageServer(self, config)
        self.avid = AvidServer(self, config, self._on_complete)

    def _on_complete(self, tag: str, commitment: Any, client: PartyId,
                     block: bytes, witness: Any) -> None:
        self.storage.store(tag, commitment, block, witness)
        self.output(tag, "stored", client)

    def stored_tags(self):
        """Tags whose dispersal this node has completed."""
        return self.storage.stored_tags()

    def storage_bytes(self) -> int:
        return self.storage.storage_bytes() + self.avid.storage_bytes()


@dataclass
class RetrievalHandle:
    """Completion state of one retrieval."""

    tag: str
    done: bool = False
    value: Optional[bytes] = None


class AvidStorageClient(Process):
    """A storage client: ``disperse(tag, value)`` and ``retrieve(tag)``."""

    def __init__(self, pid: PartyId, config: SystemConfig):
        super().__init__(pid)
        self.config = config
        self._retriever = AvidRetrieverClient(self, config, self._done)
        self._handles: Dict[str, RetrievalHandle] = {}

    def disperse(self, tag: str, value: bytes) -> None:
        """Store ``value`` under ``tag`` (write-once)."""
        disperse(self, tag, value, self.config)

    def retrieve(self, tag: str) -> RetrievalHandle:
        """Fetch the value stored under ``tag``; returns a handle whose
        ``value`` is set (possibly to ``None``) when ``done``."""
        handle = RetrievalHandle(tag=tag)
        self._handles[tag] = handle
        self._retriever.retrieve(tag)
        return handle

    def _done(self, tag: str, value: Optional[bytes]) -> None:
        handle = self._handles.get(tag)
        if handle is not None and not handle.done:
            handle.done = True
            handle.value = value
            self.output(tag, "retrieved", value is not None)
