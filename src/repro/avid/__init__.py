"""Asynchronous verifiable information dispersal (AVID).

``disperse``/:class:`AvidServer` implement Protocol Disperse (the
substrate the register protocols use); ``retrieve`` and the storage-node
classes package AVID as a standalone write-once verifiable storage
service, completing the Cachin-Tessaro AVID scheme the paper builds on.
"""

from repro.avid.disperse import (
    MSG_ECHO,
    MSG_READY,
    MSG_SEND,
    AvidServer,
    disperse,
)
from repro.avid.node import (
    AvidStorageClient,
    AvidStorageNode,
    RetrievalHandle,
)
from repro.avid.retrieve import (
    MSG_BLOCK,
    MSG_RETRIEVE,
    AvidRetrieverClient,
    AvidStorageServer,
)

__all__ = [
    "MSG_ECHO",
    "MSG_READY",
    "MSG_SEND",
    "AvidServer",
    "disperse",
    "AvidStorageClient",
    "AvidStorageNode",
    "RetrievalHandle",
    "MSG_BLOCK",
    "MSG_RETRIEVE",
    "AvidRetrieverClient",
    "AvidStorageServer",
]
