"""Protocol Retrieve — reading back a dispersed value from AVID storage.

The AVID scheme of Cachin–Tessaro (reviewed in Appendix A of the paper)
pairs Disperse with a retrieval protocol: a client asks all servers for
their stored blocks and reconstructs the value from any ``k`` blocks that
match the commitment.  The register protocols embed an equivalent
mechanism in their read path (with timestamps and listeners); this module
provides the *standalone* retrieval, so the AVID substrate is usable as a
static verifiable storage layer on its own (and so the paper's AVID
building block is complete).

Guarantees, given a completed dispersal with commitment ``D``:

* an honest client retrieves the unique value ``F'`` bound to ``D``
  (blocks are validated against ``D``, so Byzantine servers cannot
  substitute data);
* retrieval terminates once ``n - t`` servers respond; by AVID's
  agreement property all honest servers eventually complete and hold
  valid blocks, so some commitment group reaches ``k``.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Optional, Tuple

from repro.common.serialization import encode
from repro.config import SystemConfig
from repro.net.message import Message
from repro.net.process import Process

MSG_RETRIEVE = "avid-retrieve"
MSG_BLOCK = "avid-block"

#: done(tag, value_or_None)
RetrieveCallback = Callable[[str, Optional[bytes]], None]


class AvidRetrieverClient:
    """Client-side retrieval component.

    Attach to a client process; call :meth:`retrieve` per dispersal tag.
    ``done(tag, value)`` fires with the reconstructed value, or ``None``
    when ``n - t`` servers responded but no commitment group reached
    ``k`` valid blocks (nothing was dispersed under that tag, or the
    dispersal never completed anywhere).
    """

    def __init__(self, process: Process, config: SystemConfig,
                 done: RetrieveCallback):
        self._process = process
        self._config = config
        self._done = done
        self._rounds = itertools.count(1)
        # Block replies need no handler: they are buffered in the inbox
        # and consumed by the collection thread's wait condition.

    def retrieve(self, tag: str) -> None:
        """Start retrieving the value dispersed under ``tag``."""
        round_no = next(self._rounds)
        self._process.send_to_servers(tag, MSG_RETRIEVE, round_no)
        self._process.start_thread(self._collect(tag, round_no))

    def _collect(self, tag: str, round_no: int):
        config = self._config
        scheme = config.commitment_scheme
        process = self._process

        def matches(message: Message) -> bool:
            payload = message.payload
            return (message.sender.is_server and len(payload) == 4
                    and payload[0] == round_no)

        # check() is re-polled on every activation; report each server's
        # failed block verification to the tracer only once per round.
        flagged = set()

        def check():
            """Done when some commitment group holds ``k`` valid blocks,
            or ``n - t`` servers answered either 'nothing stored' or a
            block that fails verification.

            Unverifiable replies count toward the negative verdict just
            like explicit misses: both come from servers that do not
            hold a validly dispersed block.  This keeps the guarantee
            that ``n - t`` replies suffice for a verdict (a Byzantine
            server sending garbage instead of staying silent must not
            force the client to wait for extra replies), and it can
            never flip the verdict of a retrievable value: after a
            completed dispersal every honest server's reply verifies
            against its commitment, so missing-or-invalid replies all
            come from the at most ``t < n - t`` faulty servers and
            never reach the quorum."""
            replies = process.inbox.first_per_sender(tag, MSG_BLOCK,
                                                     where=matches)
            groups: Dict[bytes, Dict[int, bytes]] = {}
            missing = 0
            invalid = 0
            for message in replies:
                _, commitment, block, witness = message.payload
                if commitment is None or not isinstance(block, bytes):
                    missing += 1
                    continue
                index = message.sender.index
                if scheme.verify(commitment, index, block, witness):
                    groups.setdefault(encode(commitment),
                                      {})[index] = block
                else:
                    invalid += 1
                    if message.sender not in flagged:
                        flagged.add(message.sender)
                        process.note_verification_failure(
                            tag, MSG_BLOCK, message.sender)
            for blocks in groups.values():
                if len(blocks) >= config.k:
                    try:
                        return ("value", config.coder.decode(
                            blocks.items()))
                    except Exception:
                        continue  # inconsistent group: keep waiting
            if missing + invalid >= config.quorum:
                return ("missing", None)
            return None

        verdict, value = yield check
        self._done(tag, value)


class AvidStorageServer:
    """Server-side retrieval component backed by completed dispersals.

    Wire it to the same process as an
    :class:`~repro.avid.disperse.AvidServer` and record completions via
    :meth:`store` (typically from the AVID ``complete`` callback).
    """

    def __init__(self, process: Process, config: SystemConfig):
        self._process = process
        self._config = config
        self._stored: Dict[str, Tuple[Any, bytes, Any]] = {}
        process.on(MSG_RETRIEVE, self._on_retrieve)

    def store(self, tag: str, commitment: Any, block: bytes,
              witness: Any) -> None:
        """Record a completed dispersal under its tag."""
        self._stored[tag] = (commitment, block, witness)

    def stored_tags(self):
        """Tags with a stored block, sorted."""
        return sorted(self._stored)

    def _on_retrieve(self, message: Message) -> None:
        if len(message.payload) != 1:
            return
        (round_no,) = message.payload
        if not isinstance(round_no, int):
            return  # byzantine round: never echo unverified objects back
        stored = self._stored.get(message.tag)
        if stored is None:
            # Respond anyway: retrieval quorums must not block on tags
            # this server never completed.
            self._process.send(message.sender, message.tag, MSG_BLOCK,
                               round_no, None, None, None)
            return
        commitment, block, witness = stored
        self._process.send(message.sender, message.tag, MSG_BLOCK,
                           round_no, commitment, block, witness)

    def storage_bytes(self) -> int:
        """Bytes of stored blocks (this node's share of every value)."""
        return sum(len(block) for _, block, _ in self._stored.values())
