"""Experiment F11 — asynchrony sensitivity and load balance.

Two claims implicit in the paper's model and design:

1. **Scheduling independence.**  The protocols assume nothing about
   timing — liveness and atomicity must hold under *every* message
   schedule.  This experiment runs the same workload under four
   adversarial delivery disciplines (FIFO, seeded-random reordering, a
   scheduler that starves one server, and a transient partition) and
   verifies the outcome is identical: all operations terminate, the
   history linearizes, and the read results agree.

2. **Leaderless load balance.**  Unlike primary-based BFT systems, the
   register protocols have no distinguished replica: every quorum
   involves whichever ``n − t`` servers respond.  Measured per-server
   received bytes should be near-uniform (max/mean close to 1), except
   when the adversary deliberately starves a server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.history import HistoryRecorder
from repro.cluster import build_cluster
from repro.common.ids import server_id
from repro.config import SystemConfig
from repro.experiments.common import render_table
from repro.net.schedulers import make_scheduler
from repro.workloads.generator import random_workload, run_workload

TAG = "reg"


@dataclass
class SensitivityRow:
    scheduler: str
    terminated: bool
    atomic: bool
    steps: int
    load_imbalance: float


#: The sweep as declarative factory configs (name, kwargs) — everything
#: an experiment config file can express is reachable through
#: :func:`repro.net.schedulers.make_scheduler`.
SCHEDULER_CONFIGS = [
    ("fifo", "fifo", {}),
    ("random", "random", {}),
    ("starve-P1", "slow-parties", {"slow_parties": [1]}),
    ("partition-heals", "partition",
     {"group": [1, 2], "heal_after": 300}),
]


def _schedulers(seed: int) -> List:
    built = []
    for label, kind, params in SCHEDULER_CONFIGS:
        kwargs = dict(params)
        if "slow_parties" in kwargs:
            kwargs["slow_parties"] = {server_id(j)
                                      for j in kwargs["slow_parties"]}
        if "group" in kwargs:
            kwargs["group"] = {server_id(j) for j in kwargs["group"]}
        built.append((label, make_scheduler(kind, seed=seed, **kwargs)))
    return built


def run(protocol: str = "atomic_ns", n: int = 4, t: int = 1,
        writes: int = 4, reads: int = 4, seed: int = 0
        ) -> List[SensitivityRow]:
    """Execute the experiment sweep; returns structured result rows."""
    rows = []
    for name, scheduler in _schedulers(seed):
        config = SystemConfig(n=n, t=t, seed=seed)
        cluster = build_cluster(config, protocol=protocol, num_clients=3,
                                scheduler=scheduler)
        operations = random_workload(3, writes=writes, reads=reads,
                                     seed=seed)
        handles = run_workload(cluster, TAG, operations, seed=seed)
        atomic = True
        try:
            HistoryRecorder(cluster, TAG).check()
        except Exception:
            atomic = False
        metrics = cluster.simulator.metrics
        rows.append(SensitivityRow(
            scheduler=name,
            terminated=all(handle.done for handle in handles.values()),
            atomic=atomic,
            steps=cluster.simulator.time,
            load_imbalance=metrics.load_imbalance(
                cluster.simulator.server_pids)))
    return rows


def render(rows: List[SensitivityRow]) -> str:
    """Render result rows as the printable table."""
    headers = ["scheduler", "all terminated", "atomic", "events",
               "server load max/mean"]
    body = [[row.scheduler, "yes" if row.terminated else "NO",
             "yes" if row.atomic else "NO", row.steps,
             f"{row.load_imbalance:.2f}"] for row in rows]
    return render_table(
        headers, body,
        title="F11: the same workload under four adversarial schedules "
              "(atomic_ns, n=4, t=1)")


def main() -> None:
    """Run the experiment at default scale and print its table(s)."""
    print(render(run()))


if __name__ == "__main__":
    main()
