"""Experiment F6 — read cost after inconsistent (poisonous) writes.

The paper's core argument against read-time validation (Section 1.1):
with Goodson et al., "retrieving data can be very inefficient in the case
of several faulty write operations" — every poisonous version a Byzantine
writer stored costs every subsequent read one rollback round trip.  With
verifiable dispersal (Protocols Atomic/AtomicNS), inconsistency is
rejected at *write* time: the dispersal never completes, nothing is
stored, and read cost is flat no matter how many inconsistent writes were
attempted.

Measures, as a function of the number ``w`` of inconsistent write
attempts: messages per subsequent read, rollback rounds (Goodson), and
whether any inconsistent write took effect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.cluster import build_cluster
from repro.config import SystemConfig
from repro.experiments.common import render_table
from repro.faults.byzantine_clients import (
    InconsistentDisperser,
    PoisonousGoodsonWriter,
)
from repro.net.schedulers import RandomScheduler
from repro.workloads.generator import make_values

TAG = "reg"


@dataclass
class PoisonRow:
    protocol: str
    poisonous_writes: int
    read_messages: int
    rollback_rounds: int
    poison_took_effect: bool


def _poison_effected(cluster, oids) -> bool:
    accepted = {event.payload[0]
                for event in cluster.simulator.event_log
                if event.kind == "out"
                and event.action == "write-accepted" and event.payload}
    return any(oid in accepted for oid in oids)


def run(counts: Sequence[int] = (0, 1, 2, 4, 8), t: int = 1,
        seed: int = 0, value_size: int = 512) -> List[PoisonRow]:
    """Execute the experiment sweep; returns structured result rows."""
    rows = []
    garbage = make_values(2, size=value_size, prefix=b"garbage")
    honest_value = make_values(1, size=value_size, prefix=b"honest")[0]

    for count in counts:
        # --- Goodson et al.: poison is stored, reads roll back ------------
        config = SystemConfig(n=4 * t + 1, t=t, seed=seed)
        cluster = build_cluster(
            config, protocol="goodson", num_clients=2,
            scheduler=RandomScheduler(seed),
            client_overrides={
                2: lambda pid, cfg: PoisonousGoodsonWriter(pid, cfg)})
        cluster.write(1, TAG, "honest", honest_value)
        oids = []
        for index in range(count):
            oid = f"poison{index}"
            oids.append(oid)
            # Monotonically increasing timestamps stack the poison on top.
            cluster.client(2).attack_write(TAG, oid, 100 + index, garbage)
        cluster.run()
        before = cluster.simulator.metrics.snapshot()
        read = cluster.read(1, TAG, "probe")
        cluster.run()
        after = cluster.simulator.metrics.snapshot()
        assert read.result == honest_value
        reader = cluster.client(1)
        rows.append(PoisonRow(
            protocol="goodson", poisonous_writes=count,
            read_messages=after[0] - before[0],
            rollback_rounds=reader.rollback_counts.get("probe", 0),
            poison_took_effect=_poison_effected(cluster, oids)))

        # --- AtomicNS: poison is rejected at write time --------------------
        config = SystemConfig(n=3 * t + 1, t=t, seed=seed)
        cluster = build_cluster(
            config, protocol="atomic_ns", num_clients=2,
            scheduler=RandomScheduler(seed),
            client_overrides={
                2: lambda pid, cfg: InconsistentDisperser(pid, cfg)})
        cluster.write(1, TAG, "honest", honest_value)
        oids = []
        for index in range(count):
            oid = f"poison{index}"
            oids.append(oid)
            cluster.client(2).attack_write(TAG, oid, garbage, ts=index)
        cluster.run()
        before = cluster.simulator.metrics.snapshot()
        read = cluster.read(1, TAG, "probe")
        cluster.run()
        after = cluster.simulator.metrics.snapshot()
        assert read.result == honest_value
        rows.append(PoisonRow(
            protocol="atomic_ns", poisonous_writes=count,
            read_messages=after[0] - before[0], rollback_rounds=0,
            poison_took_effect=_poison_effected(cluster, oids)))
    return rows


def render(rows: List[PoisonRow]) -> str:
    """Render result rows as the printable table."""
    headers = ["protocol", "poisonous writes", "read msgs",
               "rollback rounds", "poison stored?"]
    body = [[row.protocol, row.poisonous_writes, row.read_messages,
             row.rollback_rounds,
             "yes" if row.poison_took_effect else "no"] for row in rows]
    return render_table(
        headers, body,
        title="F6: read cost after inconsistent writes "
              "(read-time rollback vs write-time verification)")


def main() -> None:
    """Run the experiment at default scale and print its table(s)."""
    print(render(run()))


if __name__ == "__main__":
    main()
