"""Experiment harness: one module per reproduced table/figure.

See DESIGN.md §3 for the experiment index and EXPERIMENTS.md for a
captured run.  ``python -m repro.experiments.run_all`` regenerates
everything; the individual modules (``comparison_table``,
``complexity_table``, ``storage_blowup``, ``communication_sweep``,
``message_complexity``, ``timestamp_attack``, ``resilience_matrix``,
``poisonous_writes``, ``concurrency_sweep``, ``threshold_bench``) are
importable and runnable on their own.
"""

from repro.experiments.common import (
    IsolatedCosts,
    OperationCost,
    measure_isolated_costs,
    render_table,
)

__all__ = [
    "IsolatedCosts",
    "OperationCost",
    "measure_isolated_costs",
    "render_table",
]
