"""Experiment F1 — storage blow-up versus system size.

The storage-efficiency claim: erasure-coded registers store
``n / k = n / (n - t)`` times the value size across all servers, versus
``n`` for replication.  At minimal deployments (``n = 3t + 1``,
``k = n - t = 2t + 1``) the blow-up stays below 2 and tends to ~1.5,
while replication grows linearly with ``n``.

Also sweeps ``k`` at fixed ``n`` to show the storage/erasure-threshold
trade-off (``k = 1`` degenerates to replication-level storage).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.common import (
    emit_bench,
    measure_isolated_costs,
    render_table,
)


@dataclass
class BlowupRow:
    protocol: str
    n: int
    t: int
    k: Optional[int]
    measured_blowup: float
    predicted_blowup: float


def run(ts: Sequence[int] = (1, 2, 3, 4, 5),
        value_size: int = 8192, seed: int = 0) -> List[BlowupRow]:
    """Execute the experiment sweep; returns structured result rows."""
    rows = []
    for t in ts:
        n = 3 * t + 1
        k = n - t
        measured = measure_isolated_costs("atomic_ns", n=n, t=t, k=k,
                                          value_size=value_size, seed=seed)
        rows.append(BlowupRow(protocol="atomic_ns", n=n, t=t, k=k,
                              measured_blowup=measured.storage_blowup,
                              predicted_blowup=n / k))
        martin = measure_isolated_costs("martin", n=n, t=t,
                                        value_size=value_size, seed=seed)
        rows.append(BlowupRow(protocol="martin", n=n, t=t, k=None,
                              measured_blowup=martin.storage_blowup,
                              predicted_blowup=float(n)))
    return rows


def run_k_sweep(n: int = 10, t: int = 3, value_size: int = 8192,
                seed: int = 0) -> List[BlowupRow]:
    """Blow-up at fixed ``(n, t)`` for every admissible ``k``."""
    rows = []
    for k in range(1, n - t + 1):
        measured = measure_isolated_costs("atomic_ns", n=n, t=t, k=k,
                                          value_size=value_size, seed=seed)
        rows.append(BlowupRow(protocol="atomic_ns", n=n, t=t, k=k,
                              measured_blowup=measured.storage_blowup,
                              predicted_blowup=n / k))
    return rows


def render(rows: List[BlowupRow], title: str = "F1: storage blow-up vs n "
           "(erasure coding vs replication)") -> str:
    """Render result rows as the printable table."""
    headers = ["protocol", "n", "t", "k", "blow-up measured",
               "blow-up predicted"]
    body = [[row.protocol, row.n, row.t,
             row.k if row.k is not None else "-",
             f"{row.measured_blowup:.2f}x", f"{row.predicted_blowup:.2f}x"]
            for row in rows]
    return render_table(headers, body, title=title)


def main() -> None:
    """Run the experiment at default scale and print its table(s)."""
    rows = run()
    k_rows = run_k_sweep()
    print(render(rows))
    print()
    print(render(k_rows,
                 title="F1b: storage blow-up vs erasure threshold k "
                       "(n=10, t=3)"))
    emit_bench("f1_storage_blowup", {"rows": rows, "k_sweep": k_rows})


if __name__ == "__main__":
    main()
