"""Experiment F7 — wait-free reads under concurrent writes.

The listeners mechanism guarantees that reads terminate regardless of
concurrent write activity (wait-freedom, Definition 1's liveness).  This
experiment drives ``c`` writers concurrently with readers under a random
adversarial schedule and reports: operation termination (must be 100%),
atomicity (the history must linearize), and the extra ``value`` messages
a read receives because concurrent writes keep feeding its listeners —
the cost of concurrency the paper bounds with ``|L|``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis.history import HistoryRecorder
from repro.cluster import build_cluster
from repro.config import SystemConfig
from repro.core.atomic import MSG_VALUE
from repro.experiments.common import render_table
from repro.net.schedulers import RandomScheduler
from repro.workloads.generator import (
    WorkloadOp,
    random_workload,
    run_workload,
)

TAG = "reg"


@dataclass
class ConcurrencyRow:
    protocol: str
    writers: int
    operations: int
    all_terminated: bool
    atomic: bool
    value_messages_per_read: float


def run(writer_counts: Sequence[int] = (1, 2, 3, 4), readers: int = 4,
        writes_per_writer: int = 2, protocol: str = "atomic_ns",
        n: int = 4, t: int = 1, seed: int = 0) -> List[ConcurrencyRow]:
    """Execute the experiment sweep; returns structured result rows."""
    rows = []
    for writers in writer_counts:
        clients = writers + 1  # last client is the dedicated reader
        config = SystemConfig(n=n, t=t, seed=seed)
        cluster = build_cluster(config, protocol=protocol,
                                num_clients=clients,
                                scheduler=RandomScheduler(seed))
        operations = random_workload(
            writers, writes=writers * writes_per_writer, reads=0,
            seed=seed)
        operations += [
            WorkloadOp(client_index=clients, kind="read", oid=f"r{i}")
            for i in range(readers)]
        handles = run_workload(cluster, TAG, operations, seed=seed,
                               invoke_probability=0.05)
        atomic = True
        try:
            HistoryRecorder(cluster, TAG).check()
        except Exception:
            atomic = False
        reader = cluster.client(clients)
        value_messages = len(reader.inbox.messages(TAG, MSG_VALUE))
        rows.append(ConcurrencyRow(
            protocol=protocol, writers=writers,
            operations=len(operations),
            all_terminated=all(handle.done
                               for handle in handles.values()),
            atomic=atomic,
            value_messages_per_read=value_messages / readers))
    return rows


def render(rows: List[ConcurrencyRow]) -> str:
    """Render result rows as the printable table."""
    headers = ["protocol", "concurrent writers", "ops", "all terminated",
               "atomic", "value msgs / read"]
    body = [[row.protocol, row.writers, row.operations,
             "yes" if row.all_terminated else "NO",
             "yes" if row.atomic else "NO",
             f"{row.value_messages_per_read:.1f}"] for row in rows]
    return render_table(
        headers, body,
        title="F7: wait-freedom and atomicity under concurrency")


def main() -> None:
    """Run the experiment at default scale and print its table(s)."""
    print(render(run()))


if __name__ == "__main__":
    main()
