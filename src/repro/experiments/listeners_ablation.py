"""Experiment F9 (ablation) — what the listeners mechanism buys.

DESIGN.md calls out the listeners pattern as a load-bearing design
choice; this ablation removes it (the ``no_listeners`` protocol variant:
one-shot read replies plus client retries) and measures the difference
under increasing write concurrency:

* **retry rounds per read** — with listeners a read never re-queries;
  without, a read caught between quorum updates pays a fresh ``2n``
  round, and under sustained writes may retry many times;
* **read messages** — flat for listeners, growing with contention
  without;
* **safety** — both variants stay linearizable whenever reads return
  (the quorum-intersection argument does not involve listeners), which
  the experiment also verifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis.history import HistoryRecorder
from repro.cluster import build_cluster
from repro.config import SystemConfig
from repro.experiments.common import render_table
from repro.net.schedulers import RandomScheduler
from repro.workloads.generator import (
    WorkloadOp,
    make_values,
    run_workload,
)

TAG = "reg"


@dataclass
class AblationRow:
    variant: str
    concurrent_writes: int
    reads: int
    rounds_per_read: float
    read_messages: float
    atomic: bool


def _workload(writers: int, writes: int, reads: int, reader: int):
    values = make_values(writes, size=64)
    operations = [
        WorkloadOp(client_index=(index % writers) + 1, kind="write",
                   oid=f"w{index}", value=values[index])
        for index in range(writes)
    ]
    operations += [WorkloadOp(client_index=reader, kind="read",
                              oid=f"r{index}") for index in range(reads)]
    return operations


def run(write_counts: Sequence[int] = (0, 2, 4, 8), reads: int = 4,
        n: int = 4, t: int = 1, seed: int = 0) -> List[AblationRow]:
    """Execute the experiment sweep; returns structured result rows."""
    rows = []
    writers = 2
    reader = writers + 1
    for writes in write_counts:
        for variant in ("atomic", "no_listeners"):
            config = SystemConfig(n=n, t=t, seed=seed)
            cluster = build_cluster(config, protocol=variant,
                                    num_clients=reader,
                                    scheduler=RandomScheduler(seed))
            operations = _workload(writers, writes, reads, reader)
            before = cluster.simulator.metrics.snapshot()
            run_workload(cluster, TAG, operations, seed=seed,
                         invoke_probability=0.05)
            after = cluster.simulator.metrics.snapshot()
            atomic = True
            try:
                HistoryRecorder(cluster, TAG).check()
            except Exception:
                atomic = False
            client = cluster.client(reader)
            if variant == "no_listeners":
                total_rounds = sum(client.read_rounds.values())
            else:
                total_rounds = reads  # listeners: exactly one query each
            read_traffic = sum(
                1 for message in client.inbox.messages(TAG, "value"))
            rows.append(AblationRow(
                variant=variant, concurrent_writes=writes, reads=reads,
                rounds_per_read=total_rounds / reads,
                read_messages=read_traffic / reads,
                atomic=atomic))
    return rows


def render(rows: List[AblationRow]) -> str:
    """Render result rows as the printable table."""
    headers = ["variant", "concurrent writes", "reads",
               "query rounds / read", "value msgs / read", "atomic"]
    body = [[row.variant, row.concurrent_writes, row.reads,
             f"{row.rounds_per_read:.2f}", f"{row.read_messages:.1f}",
             "yes" if row.atomic else "NO"] for row in rows]
    return render_table(
        headers, body,
        title="F9 (ablation): reads with vs without the listeners "
              "mechanism")


def main() -> None:
    """Run the experiment at default scale and print its table(s)."""
    print(render(run()))


if __name__ == "__main__":
    main()
