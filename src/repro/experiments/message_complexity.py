"""Experiment F3 — message complexity versus system size.

Measures messages per isolated operation as ``n`` grows.  Expected shape
(Section 3.5): the erasure-coded protocols pay ``O(n^2)`` messages per
write (Disperse echo/ready rounds, the broadcast, and — for AtomicNS —
the signature-share round) and ``O(n)`` per read; the replication
baselines pay ``O(n)`` for both.  Fitting the measured write counts
against ``n^2`` should give a near-constant coefficient for Atomic(NS)
and a vanishing one for Martin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.experiments.common import (
    emit_bench,
    measure_isolated_costs,
    render_table,
)

PROTOCOLS = ("atomic", "atomic_ns", "martin")


@dataclass
class MessageRow:
    protocol: str
    n: int
    t: int
    write_messages: int
    read_messages: int

    @property
    def write_per_n2(self) -> float:
        return self.write_messages / (self.n * self.n)

    @property
    def read_per_n(self) -> float:
        return self.read_messages / self.n


def run(ts: Sequence[int] = (1, 2, 3, 4, 5), value_size: int = 1024,
        seed: int = 0) -> List[MessageRow]:
    """Execute the experiment sweep; returns structured result rows."""
    rows = []
    for protocol in PROTOCOLS:
        for t in ts:
            n = 3 * t + 1
            measured = measure_isolated_costs(
                protocol, n=n, t=t, value_size=value_size, seed=seed)
            rows.append(MessageRow(
                protocol=protocol, n=n, t=t,
                write_messages=measured.write.messages,
                read_messages=measured.read.messages))
    return rows


def render(rows: List[MessageRow]) -> str:
    """Render result rows as the printable table."""
    headers = ["protocol", "n", "write msgs", "write msgs / n^2",
               "read msgs", "read msgs / n"]
    body = [[row.protocol, row.n, row.write_messages,
             f"{row.write_per_n2:.2f}", row.read_messages,
             f"{row.read_per_n:.2f}"] for row in rows]
    return render_table(
        headers, body,
        title="F3: message complexity vs n "
              "(write ~ c*n^2 for erasure-coded, ~ c*n for replication)")


def coefficients(rows: List[MessageRow]) -> Dict[str, List[float]]:
    """Per-protocol series of ``write_messages / n^2`` (flat series mean
    a genuine quadratic law)."""
    series: Dict[str, List[float]] = {}
    for row in rows:
        series.setdefault(row.protocol, []).append(row.write_per_n2)
    return series


def main() -> None:
    """Run the experiment at default scale and print its table(s)."""
    rows = run()
    print(render(rows))
    emit_bench("f3_message_complexity", {"rows": rows})


if __name__ == "__main__":
    main()
