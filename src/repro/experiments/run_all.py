"""Run every experiment (T1-T2, F1-F8) and print the tables.

Usage::

    python -m repro.experiments.run_all [--fast]

``--fast`` shrinks sweep ranges for a quick end-to-end pass.  The full run
regenerates every table/figure indexed in DESIGN.md §3; EXPERIMENTS.md
records one captured run next to the paper's claims.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    broadcast_comparison,
    communication_sweep,
    comparison_table,
    complexity_table,
    concurrency_sweep,
    consensus_comparison,
    message_complexity,
    poisonous_writes,
    resilience_matrix,
    storage_blowup,
    latency_rounds,
    listeners_ablation,
    scheduler_sensitivity,
    threshold_bench,
    timestamp_attack,
)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="smaller sweeps (seconds instead of minutes)")
    args = parser.parse_args(argv)
    fast = args.fast

    sections = [
        ("T1", lambda: comparison_table.render(comparison_table.run())),
        ("T2", lambda: complexity_table.render(complexity_table.run(
            ts=(1, 2) if fast else (1, 2, 3, 4),
            value_sizes=(1024, 16384) if fast
            else (1024, 16384, 131072)))),
        ("F1", lambda: storage_blowup.render(storage_blowup.run(
            ts=(1, 2, 3) if fast else (1, 2, 3, 4, 5)))),
        ("F1b", lambda: storage_blowup.render(
            storage_blowup.run_k_sweep(n=7 if fast else 10,
                                       t=2 if fast else 3),
            title="F1b: storage blow-up vs erasure threshold k")),
        ("F2", lambda: communication_sweep.render(communication_sweep.run(
            value_sizes=(64, 4096, 65536) if fast
            else (64, 512, 4096, 32768, 262144)))),
        ("F3", lambda: message_complexity.render(message_complexity.run(
            ts=(1, 2, 3) if fast else (1, 2, 3, 4, 5)))),
        ("F4", lambda: timestamp_attack.render(timestamp_attack.run())),
        ("F5", lambda: resilience_matrix.render(resilience_matrix.run(
            ts=(1,) if fast else (1, 2)))),
        ("F6", lambda: poisonous_writes.render(poisonous_writes.run(
            counts=(0, 1, 2, 4) if fast else (0, 1, 2, 4, 8)))),
        ("F7", lambda: concurrency_sweep.render(concurrency_sweep.run(
            writer_counts=(1, 2) if fast else (1, 2, 3, 4)))),
        ("F8", lambda: threshold_bench.render(threshold_bench.run(
            group_sizes=(4,) if fast else (4, 7, 10),
            prime_bits=(128, 256) if fast else (128, 256, 512),
            repeat=2 if fast else 5))),
        ("F9", lambda: listeners_ablation.render(listeners_ablation.run(
            write_counts=(0, 4) if fast else (0, 2, 4, 8)))),
        ("F10", lambda: "\n\n".join((
            latency_rounds.render(latency_rounds.run()),
            latency_rounds.render_rollback(
                latency_rounds.run_goodson_rollback_latency())))),
        ("F11", lambda: scheduler_sensitivity.render(
            scheduler_sensitivity.run(
                writes=2 if fast else 4, reads=2 if fast else 4))),
        ("F12", lambda: broadcast_comparison.render(
            broadcast_comparison.run(ts=(1, 2) if fast
                                     else (1, 2, 3, 4)))),
        ("F13", lambda: consensus_comparison.render(
            consensus_comparison.run(ts=(1,) if fast else (1, 2)))),
    ]
    for name, render in sections:
        start = time.perf_counter()
        table = render()
        elapsed = time.perf_counter() - start
        print(f"\n=== {name} ({elapsed:.1f}s) " + "=" * 40)
        print(table)
        sys.stdout.flush()


if __name__ == "__main__":
    main()
