"""Experiment F8 — threshold-signature microbenchmark.

AtomicNS pays one signature-share round per write.  This experiment
quantifies the cryptographic cost per operation — ``sign`` (one share),
``verify-share``, ``combine`` (``t + 1`` shares), and ``verify`` — for
the real Shoup RSA backend at several key sizes versus the ideal backend,
across group sizes.  The shapes to observe: Shoup costs grow with the
modulus (modular exponentiation) and mildly with ``n`` (the ``n!``-scaled
exponents); the ideal backend is flat (hashing only); protocol-level
results are identical either way.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.crypto.threshold import (
    IdealThresholdScheme,
    ShoupThresholdScheme,
    ThresholdScheme,
)
from repro.crypto.rsa import precomputed_modulus
from repro.experiments.common import render_table


@dataclass
class CryptoCost:
    backend: str
    n: int
    t: int
    sign_ms: float
    verify_share_ms: float
    combine_ms: float
    verify_ms: float


def _time_it(action: Callable[[], object], repeat: int = 5) -> float:
    start = time.perf_counter()
    for _ in range(repeat):
        action()
    return (time.perf_counter() - start) / repeat * 1000.0


def _measure(backend: str, scheme: ThresholdScheme, repeat: int = 5
             ) -> CryptoCost:
    message = ("reg", 42)
    sign_ms = _time_it(lambda: scheme.sign(message, 1), repeat)
    share = scheme.sign(message, 1)
    verify_share_ms = _time_it(
        lambda: scheme.verify_share(message, share), repeat)
    shares = [scheme.sign(message, j) for j in range(1, scheme.t + 2)]
    combine_ms = _time_it(lambda: scheme.combine(message, shares), repeat)
    signature = scheme.combine(message, shares)
    verify_ms = _time_it(
        lambda: scheme.verify(message, signature), repeat)
    return CryptoCost(backend=backend, n=scheme.n, t=scheme.t,
                      sign_ms=sign_ms, verify_share_ms=verify_share_ms,
                      combine_ms=combine_ms, verify_ms=verify_ms)


def run(group_sizes: Sequence[int] = (4, 7, 10),
        prime_bits: Sequence[int] = (128, 256, 512),
        repeat: int = 5, seed: int = 0) -> List[CryptoCost]:
    """Execute the experiment sweep; returns structured result rows."""
    costs = []
    for n in group_sizes:
        t = (n - 1) // 3
        costs.append(_measure(
            "ideal", IdealThresholdScheme(n, t, seed=seed), repeat))
        for bits in prime_bits:
            scheme = ShoupThresholdScheme(
                n, t, modulus=precomputed_modulus(bits),
                rng=random.Random(seed))
            costs.append(_measure(f"shoup-{2 * bits}b", scheme, repeat))
    return costs


def render(costs: List[CryptoCost]) -> str:
    """Render result rows as the printable table."""
    headers = ["backend", "n", "t", "sign (ms)", "verify-share (ms)",
               "combine (ms)", "verify (ms)"]
    body = [[cost.backend, cost.n, cost.t, f"{cost.sign_ms:.3f}",
             f"{cost.verify_share_ms:.3f}", f"{cost.combine_ms:.3f}",
             f"{cost.verify_ms:.3f}"] for cost in costs]
    return render_table(headers, body,
                        title="F8: threshold-signature operation costs")


def main() -> None:
    """Run the experiment at default scale and print its table(s)."""
    print(render(run()))


if __name__ == "__main__":
    main()
