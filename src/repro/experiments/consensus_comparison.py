"""Experiment F13 — registers without consensus vs registers on atomic
broadcast (§3.4).

The paper's protocols deliberately avoid consensus: registers are
implementable in a fully asynchronous system deterministically, while
atomic broadcast requires randomization (FLP) and pays a consensus round
per operation.  This experiment builds both — Protocol AtomicNS and the
same register serialized by the full randomized stack (reliable
broadcast + threshold-coin binary agreement + common subset) — and
measures messages, bytes, and latency rounds per isolated operation.

Expected shape: the consensus register costs several times more messages
per *write* and an order of magnitude more per *read* (reads must also
be ordered), with higher and variable round latency (expected-constant
coin rounds), and replicates fully (storage blow-up ``n``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.cluster import build_cluster
from repro.config import SystemConfig
from repro.experiments.common import fmt_bytes, render_table
from repro.net.schedulers import RandomScheduler
from repro.workloads.generator import make_values

TAG = "reg"


@dataclass
class ConsensusRow:
    protocol: str
    n: int
    write_messages: int
    write_bytes: int
    write_rounds: int
    read_messages: int
    read_bytes: int
    read_rounds: int


def _measure(protocol: str, n: int, t: int, value_size: int,
             seed: int) -> ConsensusRow:
    config = SystemConfig(n=n, t=t, seed=seed)
    cluster = build_cluster(config, protocol=protocol, num_clients=1,
                            scheduler=RandomScheduler(seed))
    prime, target = make_values(2, size=value_size)
    cluster.write(1, TAG, "prime", prime)
    cluster.run()
    metrics = cluster.simulator.metrics
    before = metrics.snapshot()
    write = cluster.write(1, TAG, "w", target)
    cluster.run()
    mid = metrics.snapshot()
    read = cluster.read(1, TAG, "r")
    cluster.run()
    after = metrics.snapshot()
    return ConsensusRow(
        protocol=protocol, n=n,
        write_messages=mid[0] - before[0],
        write_bytes=mid[1] - before[1],
        write_rounds=write.latency_rounds,
        read_messages=after[0] - mid[0],
        read_bytes=after[1] - mid[1],
        read_rounds=read.latency_rounds)


def run(ts: Sequence[int] = (1, 2), value_size: int = 1024,
        seed: int = 0) -> List[ConsensusRow]:
    """Execute the experiment sweep; returns structured result rows."""
    rows = []
    for t in ts:
        n = 3 * t + 1
        for protocol in ("atomic_ns", "abc"):
            rows.append(_measure(protocol, n, t, value_size, seed))
    return rows


def render(rows: List[ConsensusRow]) -> str:
    """Render result rows as the printable table."""
    headers = ["protocol", "n", "write msgs", "write bytes",
               "write rounds", "read msgs", "read bytes", "read rounds"]
    body = [[row.protocol, row.n, row.write_messages,
             fmt_bytes(row.write_bytes), row.write_rounds,
             row.read_messages, fmt_bytes(row.read_bytes),
             row.read_rounds] for row in rows]
    return render_table(
        headers, body,
        title="F13: consensus-free register (atomic_ns) vs register on "
              "atomic broadcast (abc)")


def main() -> None:
    """Run the experiment at default scale and print its table(s)."""
    print(render(run()))


if __name__ == "__main__":
    main()
