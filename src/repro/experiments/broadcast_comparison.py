"""Experiment F12 — broadcasting large values: Bracha vs AVID-RBC.

The paper's substrate choice in context: Bracha's reliable broadcast
carries the value in every echo and ready (``O(n^2 |F|)`` bits), which is
fine for the timestamps Protocol Atomic broadcasts but ruinous for bulk
data.  The cited AVID-RBC scheme (dispersal + one block-exchange round)
delivers the *full value at every server* for ``O(n |F|)`` bits.  This
experiment broadcasts the same value both ways and reports total bytes;
the ratio should grow linearly with ``n``.

(This is also exactly why Protocol Atomic disperses ``F`` and broadcasts
only ``ts``: the expensive full-value delivery is avoided entirely —
servers *store* a block each, never the whole value.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.broadcast.reliable import ReliableBroadcastServer, r_broadcast
from repro.broadcast.verifiable import (
    VerifiableBroadcastServer,
    v_broadcast,
)
from repro.common.ids import client_id, server_id
from repro.config import SystemConfig
from repro.experiments.common import fmt_bytes, render_table
from repro.net.process import Process
from repro.net.schedulers import RandomScheduler
from repro.net.simulator import Simulator


class _BrachaHost(Process):
    def __init__(self, pid, config):
        super().__init__(pid)
        self.delivered = {}
        self.rbc = ReliableBroadcastServer(self, config, self._deliver)

    def _deliver(self, tag, origin, value):
        self.delivered[tag] = value


class _VrbcHost(Process):
    def __init__(self, pid, config):
        super().__init__(pid)
        self.delivered = {}
        self.vrbc = VerifiableBroadcastServer(self, config, self._deliver)

    def _deliver(self, tag, client, value):
        self.delivered[tag] = value


@dataclass
class BroadcastRow:
    n: int
    value_size: int
    bracha_bytes: int
    avid_rbc_bytes: int

    @property
    def ratio(self) -> float:
        return self.bracha_bytes / max(1, self.avid_rbc_bytes)


def _measure(host_cls, send, n: int, t: int, value: bytes,
             seed: int) -> int:
    config = SystemConfig(n=n, t=t)
    simulator = Simulator(scheduler=RandomScheduler(seed))
    hosts = [simulator.add_process(host_cls(server_id(j), config))
             for j in range(1, n + 1)]
    sender = simulator.add_process(Process(client_id(1)))
    send(sender, "bc", value, config)
    simulator.run()
    for host in hosts:
        assert host.delivered.get("bc") == value
    return simulator.metrics.total_bytes


def run(ts: Sequence[int] = (1, 2, 3, 4), value_size: int = 16384,
        seed: int = 0) -> List[BroadcastRow]:
    """Execute the experiment sweep; returns structured result rows."""
    value = bytes(i % 251 for i in range(value_size))
    rows = []
    for t in ts:
        n = 3 * t + 1
        bracha = _measure(
            _BrachaHost,
            lambda sender, tag, val, cfg: r_broadcast(sender, tag, val),
            n, t, value, seed)
        avid_rbc = _measure(_VrbcHost, v_broadcast, n, t, value, seed)
        rows.append(BroadcastRow(n=n, value_size=value_size,
                                 bracha_bytes=bracha,
                                 avid_rbc_bytes=avid_rbc))
    return rows


def render(rows: List[BroadcastRow]) -> str:
    """Render result rows as the printable table."""
    headers = ["n", "|F|", "Bracha bytes", "AVID-RBC bytes",
               "ratio (Bracha / AVID-RBC)"]
    body = [[row.n, fmt_bytes(row.value_size),
             fmt_bytes(row.bracha_bytes), fmt_bytes(row.avid_rbc_bytes),
             f"{row.ratio:.2f}x"] for row in rows]
    return render_table(
        headers, body,
        title="F12: broadcasting a large value — Bracha O(n^2|F|) vs "
              "AVID-RBC O(n|F|)")


def main() -> None:
    """Run the experiment at default scale and print its table(s)."""
    print(render(run()))


if __name__ == "__main__":
    main()
