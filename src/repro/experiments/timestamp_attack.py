"""Experiment F4 — timestamp growth under attack (Section 3.4).

Reproduces the paper's non-skipping-timestamps claims by mounting every
timestamp attack against every protocol and measuring the largest
timestamp honest servers end up storing, relative to the number of writes
that actually took effect:

* corrupted **servers** reporting inflated timestamps make honest writers
  skip in Protocol Atomic and in Martin et al. (they take the max); they
  fail against AtomicNS (no valid signature) and against Bazzi–Ding (the
  ``(t+1)``-st-largest rule) — but Bazzi–Ding needs ``n > 4t`` for it;
* corrupted **clients** broadcasting huge timestamps succeed against
  Atomic and against Bazzi–Ding (no client authentication), but not
  against AtomicNS — the strongest remaining client attack is replaying a
  valid ``[ts, σ]`` pair, which stays bounded (Lemma 7).

A protocol is *non-skipping under the scenario* when the maximum stored
timestamp is at most the number of effected writes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cluster import build_cluster
from repro.config import SystemConfig
from repro.core.timestamps import Timestamp
from repro.experiments.common import render_table
from repro.faults.byzantine_clients import (
    ReplayingNSWriter,
    SkippingWriter,
    SplitBrainMartinWriter,
)
from repro.faults.byzantine_servers import (
    InflatorNSServer,
    InflatorServer,
    MartinInflatorServer,
)
from repro.net.schedulers import RandomScheduler
from repro.workloads.generator import make_values

TAG = "reg"


@dataclass
class AttackOutcome:
    scenario: str
    protocol: str
    effected_writes: int
    max_timestamp: int
    non_skipping: bool


def _max_server_timestamp(cluster) -> int:
    """Largest timestamp stored at any honest server of the cluster
    (Byzantine overrides are skipped by attribute probing)."""
    result = 0
    for server in cluster.servers:
        probe = getattr(server, "register_state", None)
        if probe is None:
            continue
        state = probe(TAG)
        timestamp = getattr(state, "timestamp", None)
        if timestamp is None and hasattr(state, "latest"):
            timestamp = state.latest()
        if isinstance(timestamp, Timestamp):
            result = max(result, timestamp.ts)
    return result


def _effected_writes(cluster) -> int:
    oids = set()
    for event in cluster.simulator.event_log:
        if event.kind == "out" and event.action == "write-accepted" \
                and event.payload:
            oids.add(event.payload[0])
    return len(oids)


def _outcome(scenario: str, protocol: str, cluster) -> AttackOutcome:
    effected = _effected_writes(cluster)
    max_ts = _max_server_timestamp(cluster)
    return AttackOutcome(scenario=scenario, protocol=protocol,
                         effected_writes=effected, max_timestamp=max_ts,
                         non_skipping=max_ts <= effected)


def run(t: int = 1, honest_writes: int = 5, seed: int = 0
        ) -> List[AttackOutcome]:
    """Execute the experiment sweep; returns structured result rows."""
    outcomes = []
    values = make_values(honest_writes + 2, size=64)

    def honest_load(cluster, start: int = 0) -> None:
        for index in range(honest_writes):
            cluster.write(1, TAG, f"hw{index}", values[index])
        cluster.run()

    # -- corrupted servers inflating their ts replies -----------------------
    server_attacks = [
        ("server-inflation", "atomic", 3 * t + 1,
         lambda pid, cfg: InflatorServer(pid, cfg)),
        ("server-inflation", "atomic_ns", 3 * t + 1,
         lambda pid, cfg: InflatorNSServer(pid, cfg)),
        ("server-inflation", "martin", 3 * t + 1,
         lambda pid, cfg: MartinInflatorServer(pid, cfg)),
        ("server-inflation", "bazzi_ding", 4 * t + 1,
         lambda pid, cfg: MartinInflatorServer(pid, cfg)),
    ]
    for scenario, protocol, n, factory in server_attacks:
        config = SystemConfig(n=n, t=t, seed=seed)
        overrides = {index: factory for index in range(1, t + 1)}
        cluster = build_cluster(config, protocol=protocol, num_clients=1,
                                scheduler=RandomScheduler(seed),
                                server_overrides=overrides)
        honest_load(cluster)
        outcomes.append(_outcome(scenario, protocol, cluster))

    # -- corrupted client broadcasting a huge timestamp -----------------------
    for protocol in ("atomic", "atomic_ns"):
        config = SystemConfig(n=3 * t + 1, t=t, seed=seed)
        cluster = build_cluster(
            config, protocol=protocol, num_clients=2,
            scheduler=RandomScheduler(seed),
            client_overrides={2: lambda pid, cfg: SkippingWriter(pid, cfg)})
        cluster.client(2).attack_write(TAG, "skip", values[honest_writes])
        cluster.run()
        honest_load(cluster)
        outcomes.append(_outcome("client-skipping", protocol, cluster))

    # -- corrupted client against Bazzi-Ding: store a huge ts directly --------
    config = SystemConfig(n=4 * t + 1, t=t, seed=seed)
    cluster = build_cluster(
        config, protocol="bazzi_ding", num_clients=2,
        scheduler=RandomScheduler(seed),
        client_overrides={
            2: lambda pid, cfg: SplitBrainMartinWriter(pid, cfg)})
    cluster.client(2).attack_write(TAG, "skip", 10 ** 12,
                                   [values[honest_writes]])
    cluster.run()
    honest_load(cluster)
    outcomes.append(_outcome("client-skipping", "bazzi_ding", cluster))

    # -- strongest AtomicNS client attack: replay a valid [ts, sig] pair ------
    config = SystemConfig(n=3 * t + 1, t=t, seed=seed)
    cluster = build_cluster(
        config, protocol="atomic_ns", num_clients=2,
        scheduler=RandomScheduler(seed),
        client_overrides={
            2: lambda pid, cfg: ReplayingNSWriter(pid, cfg)})
    honest_load(cluster)
    state = cluster.server(t + 1).register_state(TAG)
    cluster.client(2).attack_write(TAG, "replay",
                                   values[honest_writes + 1],
                                   state.timestamp.ts, state.signature)
    cluster.run()
    outcomes.append(_outcome("client-replay", "atomic_ns", cluster))
    return outcomes


def render(outcomes: List[AttackOutcome]) -> str:
    """Render result rows as the printable table."""
    headers = ["scenario", "protocol", "effected writes", "max timestamp",
               "non-skipping held"]
    body = [[outcome.scenario, outcome.protocol, outcome.effected_writes,
             outcome.max_timestamp,
             "yes" if outcome.non_skipping else "NO (skipped)"]
            for outcome in outcomes]
    return render_table(headers, body,
                        title="F4: timestamp growth under attack")


def main() -> None:
    """Run the experiment at default scale and print its table(s)."""
    print(render(run()))


if __name__ == "__main__":
    main()
