"""Experiment T2 — Section 3.5 complexity analysis, analytic vs measured.

For Protocol AtomicNS (the paper's full protocol), compares the
re-derived closed-form complexity expressions of
:class:`repro.analysis.complexity.ComplexityModel` against measured
values from the simulator, across deployment sizes and value sizes.
The prediction/measurement ratio should be O(1) (near 1.0) everywhere —
that is, the model captures the true growth in both ``n`` and ``|F|``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis.complexity import ComplexityModel, Prediction
from repro.experiments.common import (
    IsolatedCosts,
    fmt_bytes,
    measure_isolated_costs,
    render_table,
)


@dataclass
class ComplexityRow:
    n: int
    t: int
    value_size: int
    predicted: Prediction
    measured: IsolatedCosts

    @property
    def write_bytes_ratio(self) -> float:
        return self.measured.write.message_bytes / \
            max(1, self.predicted.write_bytes)

    @property
    def read_bytes_ratio(self) -> float:
        return self.measured.read.message_bytes / \
            max(1, self.predicted.read_bytes)

    @property
    def write_messages_ratio(self) -> float:
        return self.measured.write.messages / \
            max(1, self.predicted.write_messages)


def run(ts: Sequence[int] = (1, 2, 3, 4),
        value_sizes: Sequence[int] = (1024, 16 * 1024, 131072),
        protocol: str = "atomic_ns",
        seed: int = 0) -> List[ComplexityRow]:
    """Execute the experiment sweep; returns structured result rows."""
    rows = []
    for t in ts:
        n = 3 * t + 1
        for value_size in value_sizes:
            model = ComplexityModel(n=n, t=t, value_size=value_size)
            predicted = getattr(model, protocol)()
            measured = measure_isolated_costs(
                protocol, n=n, t=t, value_size=value_size, seed=seed)
            rows.append(ComplexityRow(n=n, t=t, value_size=value_size,
                                      predicted=predicted,
                                      measured=measured))
    return rows


def render(rows: List[ComplexityRow]) -> str:
    """Render result rows as the printable table."""
    headers = ["n", "t", "|F|", "write msgs (meas/pred)",
               "write bytes (meas/pred)", "read bytes (meas/pred)",
               "storage/server"]
    body = []
    for row in rows:
        body.append([
            row.n, row.t, fmt_bytes(row.value_size),
            f"{row.measured.write.messages}/{row.predicted.write_messages}"
            f" ({row.write_messages_ratio:.2f})",
            f"{fmt_bytes(row.measured.write.message_bytes)}/"
            f"{fmt_bytes(row.predicted.write_bytes)}"
            f" ({row.write_bytes_ratio:.2f})",
            f"{fmt_bytes(row.measured.read.message_bytes)}/"
            f"{fmt_bytes(row.predicted.read_bytes)}"
            f" ({row.read_bytes_ratio:.2f})",
            fmt_bytes(row.measured.storage_per_server),
        ])
    return render_table(
        headers, body,
        title="T2: AtomicNS complexity — measured vs analytic model")


def main() -> None:
    """Run the experiment at default scale and print its table(s)."""
    print(render(run()))


if __name__ == "__main__":
    main()
