"""Experiment F2 — communication complexity versus value size.

Sweeps ``|F|`` and reports per-operation bytes for AtomicNS (erasure
coded, with both hash-vector and Merkle commitments), Martin et al.
(replication), and Goodson et al.  Expected shape:

* **reads**: erasure-coded protocols transfer ``~ n/k · |F|`` ≈ ``1.5|F|``
  per read, replication ``n·|F|`` — erasure coding wins by ``~ k`` for
  large values; for tiny values fixed overheads (hash vectors) dominate
  and replication is cheaper, giving a crossover in ``|F|``.
* **writes**: Disperse's echo/ready rounds cost ``~ 2 n/k · n |F|/n``;
  the hash-vector term ``n^3 H`` dominates small values and is reduced by
  the Merkle-tree variant (Section 2.3's optimization).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.experiments.common import (
    emit_bench,
    fmt_bytes,
    measure_isolated_costs,
    render_table,
)

#: (label, protocol, commitment)
VARIANTS: Tuple = (
    ("atomic_ns/vector", "atomic_ns", "vector"),
    ("atomic_ns/merkle", "atomic_ns", "merkle"),
    ("martin", "martin", "vector"),
    ("goodson", "goodson", "vector"),
)


@dataclass
class SweepPoint:
    label: str
    value_size: int
    write_bytes: int
    read_bytes: int


def run(n: int = 7, t: int = 2,
        value_sizes: Sequence[int] = (64, 512, 4096, 32768, 262144),
        seed: int = 0) -> List[SweepPoint]:
    """Execute the experiment sweep; returns structured result rows."""
    points = []
    for label, protocol, commitment in VARIANTS:
        # The n > 4t baselines need a bigger cluster at the same t.
        protocol_n = n if protocol != "goodson" else max(n, 4 * t + 1)
        for value_size in value_sizes:
            measured = measure_isolated_costs(
                protocol, n=protocol_n, t=t, value_size=value_size,
                seed=seed, commitment=commitment)
            points.append(SweepPoint(
                label=label, value_size=value_size,
                write_bytes=measured.write.message_bytes,
                read_bytes=measured.read.message_bytes))
    return points


def render(points: List[SweepPoint]) -> str:
    """Render result rows as the printable table."""
    value_sizes = sorted({point.value_size for point in points})
    labels = []
    for point in points:
        if point.label not in labels:
            labels.append(point.label)
    headers = ["|F|"] + [f"{label} write/read" for label in labels]
    by_key = {(point.label, point.value_size): point for point in points}
    body = []
    for value_size in value_sizes:
        row = [fmt_bytes(value_size)]
        for label in labels:
            point = by_key[(label, value_size)]
            row.append(f"{fmt_bytes(point.write_bytes)} / "
                       f"{fmt_bytes(point.read_bytes)}")
        body.append(row)
    return render_table(
        headers, body,
        title="F2: per-operation communication vs value size (n=7, t=2)")


def read_crossover(points: List[SweepPoint], erasure: str =
                   "atomic_ns/vector", replicated: str = "martin") -> int:
    """Smallest swept ``|F|`` at which the erasure-coded read is cheaper
    than the replicated read (0 if never)."""
    by_key = {(point.label, point.value_size): point for point in points}
    for value_size in sorted({p.value_size for p in points}):
        erasure_point = by_key.get((erasure, value_size))
        replicated_point = by_key.get((replicated, value_size))
        if erasure_point and replicated_point and \
                erasure_point.read_bytes < replicated_point.read_bytes:
            return value_size
    return 0


def main() -> None:
    """Run the experiment at default scale and print its table(s)."""
    points = run()
    print(render(points))
    crossover = read_crossover(points)
    print(f"\nread-cost crossover (erasure beats replication): "
          f"|F| >= {fmt_bytes(crossover) if crossover else 'never'}")
    emit_bench("f2_communication_sweep",
               {"points": points, "read_crossover": crossover})


if __name__ == "__main__":
    main()
