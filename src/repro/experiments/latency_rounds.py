"""Experiment F10 — operation latency in message rounds.

In an asynchronous system the natural latency measure is the length of
the operation's critical path in message delays.  The simulator tracks
causal depth per message, so a completed operation reports exactly how
many sequential network hops it needed:

* replication (Martin et al.): write = 4 hops (``get-ts``/``ts`` round
  trip + ``store``/``ack``), read = 2;
* Protocol Atomic adds the Disperse/broadcast echo-ready rounds before
  servers accept: write = 6 hops;
* Protocol AtomicNS adds the signature-share exchange: write = 7 hops;
* Goodson et al. writes stay at 4 hops (no server interaction) — and its
  reads pay 2 extra hops per rollback, re-measured here per poison depth.

This quantifies the latency cost of write-time verifiability and
non-skipping timestamps: +2 and +3 round trips over bare replication,
independent of ``n`` and ``|F|``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.cluster import build_cluster
from repro.config import SystemConfig
from repro.experiments.common import emit_bench, render_table
from repro.faults.byzantine_clients import PoisonousGoodsonWriter
from repro.net.schedulers import RandomScheduler
from repro.workloads.generator import make_values

TAG = "reg"

PROTOCOLS = ("martin", "goodson", "bazzi_ding", "atomic", "atomic_ns")


@dataclass
class LatencyRow:
    protocol: str
    n: int
    write_rounds: int
    read_rounds: int


def run(t: int = 1, seed: int = 0,
        protocols: Sequence[str] = PROTOCOLS) -> List[LatencyRow]:
    """Execute the experiment sweep; returns structured result rows."""
    rows = []
    prime, target = make_values(2, size=256)
    for protocol in protocols:
        n = 3 * t + 1 if protocol in ("martin", "atomic", "atomic_ns") \
            else 4 * t + 1
        config = SystemConfig(n=n, t=t, seed=seed)
        cluster = build_cluster(config, protocol=protocol, num_clients=1,
                                scheduler=RandomScheduler(seed))
        cluster.write(1, TAG, "prime", prime)
        cluster.run()
        write = cluster.write(1, TAG, "w", target)
        cluster.run()
        read = cluster.read(1, TAG, "r")
        cluster.run()
        rows.append(LatencyRow(protocol=protocol, n=n,
                               write_rounds=write.latency_rounds,
                               read_rounds=read.latency_rounds))
    return rows


@dataclass
class RollbackLatencyRow:
    poisonous_writes: int
    read_rounds: int


def run_goodson_rollback_latency(counts: Sequence[int] = (0, 1, 2, 4),
                                 t: int = 1, seed: int = 0
                                 ) -> List[RollbackLatencyRow]:
    """Goodson read latency grows by one round trip per stacked poison."""
    rows = []
    garbage = make_values(2, size=128, prefix=b"bad")
    honest = make_values(1, size=128, prefix=b"good")[0]
    for count in counts:
        config = SystemConfig(n=4 * t + 1, t=t, seed=seed)
        cluster = build_cluster(
            config, protocol="goodson", num_clients=2,
            scheduler=RandomScheduler(seed),
            client_overrides={
                2: lambda pid, cfg: PoisonousGoodsonWriter(pid, cfg)})
        cluster.write(1, TAG, "honest", honest)
        for index in range(count):
            cluster.client(2).attack_write(TAG, f"p{index}", 100 + index,
                                           garbage)
        cluster.run()
        read = cluster.read(1, TAG, "probe")
        cluster.run()
        rows.append(RollbackLatencyRow(poisonous_writes=count,
                                       read_rounds=read.latency_rounds))
    return rows


def render(rows: List[LatencyRow]) -> str:
    """Render result rows as the printable table."""
    headers = ["protocol", "n", "write rounds", "read rounds"]
    body = [[row.protocol, row.n, row.write_rounds, row.read_rounds]
            for row in rows]
    return render_table(
        headers, body,
        title="F10: operation latency in message rounds (isolated ops)")


def render_rollback(rows: List[RollbackLatencyRow]) -> str:
    """Render the rollback-latency rows as a printable table."""
    headers = ["poisonous writes", "goodson read rounds"]
    body = [[row.poisonous_writes, row.read_rounds] for row in rows]
    return render_table(
        headers, body,
        title="F10b: Goodson read latency vs stacked poison "
              "(+2 rounds per rollback)")


def main() -> None:
    """Run the experiment at default scale and print its table(s)."""
    rows = run()
    rollback_rows = run_goodson_rollback_latency()
    print(render(rows))
    print()
    print(render_rollback(rollback_rows))
    emit_bench("f10_latency_rounds",
               {"rows": rows, "rollback": rollback_rows})


if __name__ == "__main__":
    main()
