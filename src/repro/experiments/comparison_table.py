"""Experiment T1 — the protocol comparison table.

Reproduces the paper's headline comparison (Sections 1, 1.1, 3.5): for
each protocol — Martin et al., Goodson et al., Bazzi–Ding, and the paper's
Atomic / AtomicNS — the resilience bound, whether timestamps are
non-skipping, whether Byzantine clients are tolerated, and measured
storage blow-up plus isolated read/write costs at the protocol's minimal
deployment for a given ``t``.

Expected shape (the paper's claims):

* only Atomic/AtomicNS combine ``n > 3t`` with erasure-coded storage;
* only AtomicNS has non-skipping timestamps at optimal resilience;
* replication baselines pay storage blow-up ``n`` vs ``~ n / (n - t)``;
* the erasure-coded protocols pay more messages (server-to-server
  rounds), the replicated ones pay more bytes per read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.complexity import ComplexityModel
from repro.experiments.common import (
    IsolatedCosts,
    fmt_bytes,
    measure_isolated_costs,
    render_table,
)

#: protocol -> minimal n as a function of t
MINIMAL_N = {
    "phalanx": lambda t: 4 * t + 1,
    "martin": lambda t: 3 * t + 1,
    "goodson": lambda t: 4 * t + 1,
    "bazzi_ding": lambda t: 4 * t + 1,
    "atomic": lambda t: 3 * t + 1,
    "atomic_ns": lambda t: 3 * t + 1,
}


@dataclass
class ComparisonRow:
    protocol: str
    n: int
    resilience: str
    consistency: str
    non_skipping: bool
    byzantine_clients: bool
    measured: IsolatedCosts


def run(t: int = 1, value_size: int = 4096, seed: int = 0
        ) -> List[ComparisonRow]:
    """Measure every protocol at its minimal ``n`` for this ``t``."""
    rows = []
    for protocol, minimal_n in MINIMAL_N.items():
        n = minimal_n(t)
        model = ComplexityModel(n=n, t=t, value_size=value_size)
        prediction = getattr(model, protocol)()
        measured = measure_isolated_costs(protocol, n=n, t=t,
                                          value_size=value_size, seed=seed)
        rows.append(ComparisonRow(
            protocol=protocol, n=n, resilience=prediction.resilience,
            consistency=prediction.consistency,
            non_skipping=prediction.non_skipping,
            byzantine_clients=prediction.byzantine_clients,
            measured=measured))
    return rows


def render(rows: List[ComparisonRow]) -> str:
    """Render result rows as the printable table."""
    headers = ["protocol", "resilience", "n", "semantics", "non-skip",
               "byz clients", "storage blow-up", "write msgs",
               "write bytes", "read msgs", "read bytes"]
    body = []
    for row in rows:
        body.append([
            row.protocol, row.resilience, row.n, row.consistency,
            "yes" if row.non_skipping else "no",
            "yes" if row.byzantine_clients else "no",
            f"{row.measured.storage_blowup:.2f}x",
            row.measured.write.messages,
            fmt_bytes(row.measured.write.message_bytes),
            row.measured.read.messages,
            fmt_bytes(row.measured.read.message_bytes),
        ])
    title = (f"T1: protocol comparison at t={rows[0].measured.t}, "
             f"|F|={rows[0].measured.value_size} B "
             f"(measured, isolated operations)")
    return render_table(headers, body, title=title)


def main() -> None:
    """Run the experiment at default scale and print its table(s)."""
    print(render(run()))


if __name__ == "__main__":
    main()
