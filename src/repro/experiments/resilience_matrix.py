"""Experiment F5 — the resilience matrix.

Optimal resilience (Theorem 2): Protocols Atomic/AtomicNS stay live and
atomic whenever at most ``t < n/3`` servers misbehave; exceeding the bound
may cost liveness.  The ``n > 4t`` baselines cannot even be deployed at
``n = 3t + 1``.  The matrix runs a concurrent workload against clusters
with ``f`` faulty servers (a mix of crash, equivocation, and inflation
faults) and classifies each cell:

* ``OK``        — every operation terminated and the history linearizes;
* ``STALLED``   — some honest operation could not terminate (liveness
  lost; expected as soon as ``f > t``: quorums of ``n - t`` no longer
  respond);
* ``VIOLATION`` — a non-linearizable history (must never appear for
  ``f <= t``);
* ``N/A``       — the protocol rejects the deployment (resilience bound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.analysis.history import HistoryRecorder
from repro.cluster import build_cluster
from repro.common.errors import (
    AtomicityViolation,
    ConfigurationError,
    LivenessError,
    SimulationError,
)
from repro.config import SystemConfig
from repro.experiments.common import render_table
from repro.faults.byzantine_servers import (
    CrashServer,
    EquivocatingReaderServer,
    InflatorNSServer,
    InflatorServer,
)
from repro.net.schedulers import RandomScheduler
from repro.workloads.generator import random_workload, run_workload

TAG = "reg"

OK = "OK"
STALLED = "STALLED"
VIOLATION = "VIOLATION"
NOT_APPLICABLE = "N/A"


@dataclass
class MatrixCell:
    protocol: str
    n: int
    t: int
    faulty: int
    verdict: str


def _fault_factories(protocol: str, faulty: int, t: int) -> List[Callable]:
    """Fault mix for injected servers.

    Within the bound (``faulty <= t``) a mix of crash, equivocation, and
    inflation faults exercises the quorum logic.  Beyond the bound the
    adversary picks its strongest move — all crashes — which denies every
    ``n - t`` quorum and must cost liveness.  Protocols without
    Atomic-style server state get crash faults only.
    """
    if faulty > t or protocol not in ("atomic", "atomic_ns"):
        return [lambda pid, cfg: CrashServer(pid, cfg)]
    inflator = InflatorNSServer if protocol == "atomic_ns" \
        else InflatorServer
    return [lambda pid, cfg: CrashServer(pid, cfg),
            lambda pid, cfg: EquivocatingReaderServer(pid, cfg),
            lambda pid, cfg: inflator(pid, cfg)]


def _classify(protocol: str, n: int, t: int, faulty: int,
              seed: int) -> str:
    try:
        config = SystemConfig(n=n, t=t, seed=seed)
        factories = _fault_factories(protocol, faulty, t)
        overrides = {
            index: factories[(index - 1) % len(factories)]
            for index in range(1, faulty + 1)
        }
        cluster = build_cluster(config, protocol=protocol, num_clients=3,
                                scheduler=RandomScheduler(seed),
                                server_overrides=overrides)
    except ConfigurationError:
        return NOT_APPLICABLE
    operations = random_workload(3, writes=3, reads=4, seed=seed)
    try:
        # Cap the step budget: a stalled operation leaves the network
        # quiescent with an unfinished handle, which run_workload reports
        # as a LivenessError.
        run_workload(cluster, TAG, operations, seed=seed,
                     max_steps=400_000)
    except LivenessError:
        return STALLED
    except SimulationError:
        return STALLED
    try:
        HistoryRecorder(cluster, TAG).check()
    except LivenessError:
        return STALLED
    except AtomicityViolation:
        return VIOLATION
    return OK


def run(ts: Sequence[int] = (1, 2), seed: int = 0) -> List[MatrixCell]:
    """Execute the experiment sweep; returns structured result rows."""
    cells = []
    for protocol in ("atomic", "atomic_ns", "martin", "bazzi_ding",
                     "goodson"):
        for t in ts:
            n = 3 * t + 1
            for faulty in range(0, t + 2):
                verdict = _classify(protocol, n, t, faulty, seed)
                cells.append(MatrixCell(protocol=protocol, n=n, t=t,
                                        faulty=faulty, verdict=verdict))
    return cells


def render(cells: List[MatrixCell]) -> str:
    """Render result rows as the printable table."""
    headers = ["protocol", "n", "t", "faulty servers", "verdict"]
    body = [[cell.protocol, cell.n, cell.t, cell.faulty, cell.verdict]
            for cell in cells]
    return render_table(
        headers, body,
        title="F5: resilience matrix at n = 3t+1 "
              "(OK expected iff faulty <= t and protocol deployable)")


def main() -> None:
    """Run the experiment at default scale and print its table(s)."""
    print(render(run()))


if __name__ == "__main__":
    main()
