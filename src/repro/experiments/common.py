"""Shared measurement utilities for the experiment harness.

Every experiment follows the same pattern: build a cluster, run a
workload, and report *measured* message/communication/storage complexity —
optionally next to the analytic prediction of
:mod:`repro.analysis.complexity`.  Operation costs are isolated by
differencing metric snapshots around a single operation, exactly matching
the paper's per-instance complexity definitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cluster import Cluster, build_cluster
from repro.config import SystemConfig
from repro.net.schedulers import RandomScheduler
from repro.obs.bench import emit_bench  # noqa: F401  (re-export: the
# experiments emit BENCH_*.json through this name)
from repro.workloads.generator import make_values


@dataclass(frozen=True)
class OperationCost:
    """Measured cost of one isolated operation."""

    messages: int
    message_bytes: int


@dataclass
class IsolatedCosts:
    """Measured costs of an isolated write and read plus server storage."""

    protocol: str
    n: int
    t: int
    k: Optional[int]
    value_size: int
    write: OperationCost
    read: OperationCost
    storage_per_server: float
    storage_blowup: float


def _snapshot_delta(cluster: Cluster, action) -> OperationCost:
    with cluster.simulator.metrics.scoped() as scope:
        action()
    return OperationCost(messages=scope.messages,
                         message_bytes=scope.message_bytes)


def average_register_storage(cluster: Cluster, tag: str) -> float:
    """Mean per-server storage of one register's global variables."""
    totals = []
    for server in cluster.servers:
        probe = getattr(server, "register_storage_bytes", None)
        if probe is not None:
            totals.append(probe(tag))
    return sum(totals) / len(totals) if totals else 0.0


def measure_isolated_costs(protocol: str, n: int, t: int,
                           k: Optional[int] = None,
                           value_size: int = 1024, seed: int = 0,
                           commitment: str = "vector",
                           threshold_backend: str = "ideal"
                           ) -> IsolatedCosts:
    """Measure an isolated write and an isolated read.

    A priming write moves the register past its initial state first, so
    the measured operations are steady-state (the read returns a real
    dispersed value, not ``F_init``).
    """
    config = SystemConfig(n=n, t=t, k=k, commitment=commitment,
                          threshold_backend=threshold_backend, seed=seed)
    cluster = build_cluster(config, protocol=protocol, num_clients=1,
                            scheduler=RandomScheduler(seed))
    prime, target = make_values(2, size=value_size)
    cluster.write(1, "reg", "prime", prime)
    cluster.run()
    write_cost = _snapshot_delta(
        cluster, lambda: (cluster.write(1, "reg", "w", target),
                          cluster.run()))
    read_cost = _snapshot_delta(
        cluster, lambda: (cluster.read(1, "reg", "r"), cluster.run()))
    storage = average_register_storage(cluster, "reg")
    return IsolatedCosts(
        protocol=protocol, n=n, t=t, k=config.k if protocol not in
        ("martin", "bazzi_ding") else None,
        value_size=value_size, write=write_cost, read=read_cost,
        storage_per_server=storage,
        storage_blowup=storage * n / value_size)


# ---------------------------------------------------------------------------
# Plain-text table rendering (what the benches and run_all print).
# ---------------------------------------------------------------------------

def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: Optional[str] = None) -> str:
    """Fixed-width ASCII table; cells are stringified as-is."""
    cells = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(" | ".join(header.ljust(width)
                            for header, width in zip(headers, widths)))
    lines.append(separator)
    for row in cells:
        lines.append(" | ".join(cell.ljust(width)
                                for cell, width in zip(row, widths)))
    return "\n".join(lines)


def fmt_bytes(count: float) -> str:
    """Human-readable byte counts for table cells."""
    count = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if count < 1024 or unit == "GiB":
            return f"{count:.1f} {unit}" if unit != "B" \
                else f"{int(count)} B"
        count /= 1024
    return f"{count:.1f} GiB"
