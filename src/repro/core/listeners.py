"""The set of listeners ``L`` (the Martin et al. pattern).

While a read with identifier ``oid`` is in progress, every server keeps a
listener entry ``[oid, TS, i]`` — the reader's operation identifier, the
TIMESTAMP the server held when the read arrived, and the reading client.
Whenever the server accepts a write with a larger TIMESTAMP, it forwards
the new value to all listeners with smaller entries, which is what makes
reads wait-free under concurrent writes.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.common.ids import PartyId
from repro.common.serialization import encoded_size
from repro.core.timestamps import Timestamp


class ListenerSet:
    """Listener entries of one register at one server.

    ``capacity`` optionally bounds ``|L|`` — the bound the paper's
    complexity analysis assumes (Section 3.5), noting that enforcing it
    "violates the liveness of our protocol": once full, new readers get a
    one-shot reply but no forwarding, so under sustained concurrent
    writes their reads may never assemble a stable quorum.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        self._entries: Dict[str, Tuple[Timestamp, PartyId]] = {}
        # Insertion-ordered on purpose: a plain set would make any
        # future iteration order depend on string hashing and break
        # deterministic replay (flagged by repro.lint's determinism
        # pack).
        self._retired: Dict[str, None] = {}
        self.capacity = capacity

    def add(self, oid: str, timestamp: Timestamp, client: PartyId) -> bool:
        """Register a listener; returns ``False`` if the read identifier is
        already listening, has already completed (``read-complete``), or
        the capacity bound is reached."""
        if oid in self._entries or oid in self._retired:
            return False
        if self.capacity is not None and \
                len(self._entries) >= self.capacity:
            return False
        self._entries[oid] = (timestamp, client)
        return True

    def knows(self, oid: str) -> bool:
        """Whether this read identifier was already seen (listening now,
        or retired by ``read-complete``)."""
        return oid in self._entries or oid in self._retired

    def retire(self, oid: str) -> None:
        """Handle ``read-complete``: drop the entry and refuse the
        identifier forever."""
        self._entries.pop(oid, None)
        self._retired[oid] = None

    def below(self, timestamp: Timestamp) -> Iterator[Tuple[str, PartyId]]:
        """Listeners whose recorded TIMESTAMP is strictly smaller."""
        for oid, (recorded, client) in self._entries.items():
            if recorded < timestamp:
                yield oid, client

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, oid: str) -> bool:
        return oid in self._entries

    def storage_bytes(self) -> int:
        """Wire size of the live entries (the paper bounds ``|L|`` when
        analysing storage complexity)."""
        return sum(
            encoded_size((oid, timestamp, client))
            for oid, (timestamp, client) in self._entries.items())
