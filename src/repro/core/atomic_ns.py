"""Protocol AtomicNS — atomic register with non-skipping timestamps (Fig 3).

Protocol Atomic lets corrupted clients and servers inflate timestamps
arbitrarily (a denial-of-service vector: polynomially-bounded timestamp
storage can be overflowed).  AtomicNS authenticates every timestamp with an
``(n, t)``-threshold signature on ``[ID, ts]``:

* a ``ts`` reply carries the server's current signature ``sig_c``; the
  writer picks the largest *validly signed* timestamp and r-broadcasts the
  pair ``[ts, σ]``;
* servers accept the broadcast only if ``σ`` verifies; to increment, each
  server signs ``[ID, ts + 1]`` with its key share, exchanges one round of
  ``share`` messages, and combines ``n - t`` (of which ``t + 1`` suffice)
  valid shares into the new signature.

Because honest servers only sign ``ts + 1`` after seeing a valid signature
on ``ts``, no timestamp value can be skipped: a timestamp's value is
bounded by the number of writes that took effect (Lemma 7) — with optimal
resilience ``n > 3t``, improving Bazzi–Ding's ``n > 4t``.  Key management
is minimal: clients hold only the single public key of the service.

The read operation is unchanged from Protocol Atomic.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.common.ids import PartyId
from repro.config import SystemConfig
from repro.core.atomic import AtomicClient, AtomicServer, _RegisterState
from repro.core.timestamps import Timestamp
from repro.crypto.threshold import (
    SignatureShare,
    ThresholdScheme,
    ThresholdSignature,
)
from repro.net.message import Message

MSG_SHARE = "share"


def timestamp_signature_valid(scheme: ThresholdScheme, register_tag: str,
                              ts: Any, signature: Any) -> bool:
    """Check a threshold signature on ``[ID, ts]``.

    The initial timestamp 0 is vouched for by ``⊥`` (``None``) — the paper
    assumes ``⊥`` is a valid signature for 0, avoiding a bootstrap round.
    """
    if not isinstance(ts, int) or ts < 0:
        return False
    if ts == 0 and signature is None:
        return True
    return (isinstance(signature, ThresholdSignature)
            and scheme.verify((register_tag, ts), signature))


class AtomicNSServer(AtomicServer):
    """Server ``P_j`` of Protocol AtomicNS.

    Differs from :class:`AtomicServer` in the write path only: timestamp
    replies carry ``sig_c``, accepted broadcasts must be validly signed,
    and acceptance runs the signature-share exchange round.
    """

    def _ts_reply(self, state: _RegisterState) -> Tuple[Any, ...]:
        return (state.timestamp.ts, state.signature)

    def _process_write(self, register_tag: str, oid: str,
                       writer: PartyId, broadcast_value: Any,
                       state: _RegisterState) -> None:
        """Verify the broadcast ``[ts, σ]`` pair, then run the share round
        (a thread: it waits for ``n - t`` valid shares)."""
        if not (isinstance(broadcast_value, tuple)
                and len(broadcast_value) == 2):
            return
        ts, signature = broadcast_value
        scheme = self.config.threshold_scheme
        if not timestamp_signature_valid(scheme, register_tag, ts,
                                         signature):
            return  # forged or missing signature: never accept this write
        self.start_thread(
            self._share_round(register_tag, oid, writer, state, ts))

    def _share_round(self, register_tag: str, oid: str, writer: PartyId,
                     state: _RegisterState, ts: int):
        scheme = self.config.threshold_scheme
        new_ts = ts + 1
        signed_message = (register_tag, new_ts)
        my_share = scheme.sign(signed_message, self.pid.index)
        self.send_to_servers(register_tag, MSG_SHARE, oid, my_share)
        # Memoize validity verdicts per round (the predicate depends on
        # this round's oid and timestamp, so the cache cannot be shared).
        memo: Dict[int, bool] = {}

        def valid_share(message: Message) -> bool:
            cached = memo.get(message.msg_id)
            if cached is None:
                payload = message.payload
                well_formed = (message.sender.is_server
                               and len(payload) == 2
                               and payload[0] == oid
                               and isinstance(payload[1], SignatureShare)
                               and payload[1].signer
                               == message.sender.index)
                cached = well_formed and scheme.verify_share(
                    signed_message, payload[1])
                if well_formed and not cached:
                    # A shape-correct share that fails verification is a
                    # Byzantine signal; memo keeps it once per message.
                    self.note_verification_failure(register_tag,
                                                   MSG_SHARE,
                                                   message.sender)
                memo[message.msg_id] = cached
            return cached

        share_messages = yield self.condition_quorum(
            register_tag, MSG_SHARE, self.config.quorum, where=valid_share)
        signature = scheme.combine(
            signed_message,
            [message.payload[1] for message in share_messages])
        self._accept_write(register_tag, oid, writer,
                           Timestamp(new_ts, oid), state,
                           signature=signature, ack_payload=(new_ts,))


class AtomicNSClient(AtomicClient):
    """Client ``C_i`` of Protocol AtomicNS.

    The write path validates timestamp signatures and broadcasts the
    ``[ts, σ]`` pair; reads are inherited unchanged.
    """

    def _valid_ts_reply(self, tag: str, payload: Tuple[Any, ...]) -> bool:
        if len(payload) != 3:
            return False
        return timestamp_signature_valid(self.config.threshold_scheme, tag,
                                         payload[1], payload[2])

    def _choose_broadcast_value(self, tag: str, replies) -> Any:
        best = max(replies, key=lambda message: message.payload[1])
        return (best.payload[1], best.payload[2])
