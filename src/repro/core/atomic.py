"""Protocol Atomic — erasure-coded Byzantine atomic register (Figures 1-2).

The paper's first protocol: a multi-writer multi-reader atomic register
simulation with optimal resilience ``n > 3t``, storage-efficient via
``(n, k)`` erasure coding, tolerating arbitrarily many Byzantine clients
through verifiable information dispersal (Protocol Disperse) and reliable
broadcast of timestamps.

Write (client ``C_i``, value ``F``, operation identifier ``oid``):
  1. query all servers for their current timestamps (``get-ts``);
  2. take the maximum ``ts`` among ``n - t`` replies;
  3. disperse ``F`` (tag ``ID|disp.oid``) and r-broadcast ``ts`` (tag
     ``ID|rbc.oid``);
  4. wait for ``n - t`` ``ack`` messages.

Server ``P_j``, upon completing the dispersal *and* r-delivering ``ts``:
  increment ``ts``; adopt ``[D, F_j, ts + 1, oid]`` if it exceeds the
  stored TIMESTAMP; forward the new value to all listeners with smaller
  entries; ack the writer; output ``write-accepted`` (the signal by which
  a write — even one by a Byzantine client — *takes effect*).

Read (client ``C_i``, operation identifier ``oid``):
  send ``read`` to all servers; collect ``value`` messages with valid
  blocks until ``n - t`` distinct servers agree on one ``(D, TIMESTAMP)``
  pair; send ``read-complete``; decode and return.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set, Tuple

from repro.avid.disperse import AvidServer, disperse
from repro.broadcast.reliable import ReliableBroadcastServer, r_broadcast
from repro.common.errors import ProtocolError
from repro.common.ids import TAG_SEP, PartyId, subtag
from repro.common.serialization import encode, encoded_size
from repro.config import SystemConfig
from repro.core.listeners import ListenerSet
from repro.core.register import OperationHandle, RegisterClientBase
from repro.core.timestamps import INITIAL_TIMESTAMP, Timestamp
from repro.net.message import Message
from repro.net.process import Process

MSG_GET_TS = "get-ts"
MSG_TS = "ts"
MSG_ACK = "ack"
MSG_READ = "read"
MSG_VALUE = "value"
MSG_READ_COMPLETE = "read-complete"

_DISP_PREFIX = "disp."
_RBC_PREFIX = "rbc."


def disp_tag(register_tag: str, oid: str) -> str:
    """Tag of the write's dispersal instance: ``ID|disp.oid``."""
    return subtag(register_tag, _DISP_PREFIX + oid)


def rbc_tag(register_tag: str, oid: str) -> str:
    """Tag of the write's reliable-broadcast instance: ``ID|rbc.oid``."""
    return subtag(register_tag, _RBC_PREFIX + oid)


def parse_subtag(tag: str) -> Optional[Tuple[str, str, str]]:
    """Split ``ID|disp.oid`` / ``ID|rbc.oid`` into ``(ID, kind, oid)``.

    Returns ``None`` for tags that are not write sub-instances.  Public
    because the observability plane (:mod:`repro.obs.spans`) uses the
    same decomposition to bind sub-protocol traffic to operations.
    """
    head, sep, last = tag.rpartition(TAG_SEP)
    if not sep:
        return None
    for prefix in (_DISP_PREFIX, _RBC_PREFIX):
        if last.startswith(prefix):
            return head, prefix[:-1], last[len(prefix):]
    return None


# internal alias retained for the server handlers below
_parse_subtag = parse_subtag


@dataclass
class _RegisterState:
    """Global variables of one simulated register at one server."""

    commitment: Any
    block: bytes
    witness: Any
    timestamp: Timestamp
    signature: Any = None  # used by AtomicNS only
    listeners: ListenerSet = field(default_factory=ListenerSet)
    # Join state for in-flight writes: per operation identifier, the
    # broadcast values and dispersal completions *per origin* — a write
    # is processed only when one party owns both halves, so a Byzantine
    # party racing its own session onto an honest oid cannot pair its
    # broadcast with the honest client's dispersal (or vice versa).
    pending_ts: Dict[str, Dict[PartyId, Any]] = field(default_factory=dict)
    pending_disp: Dict[str, Dict[PartyId, Tuple[Any, bytes, Any]]] = \
        field(default_factory=dict)
    accepted: Set[str] = field(default_factory=set)


class AtomicServer(Process):
    """Server ``P_j`` of Protocol Atomic.

    One server process simulates any number of registers, each identified
    by its tag ``ID`` (registers are created on first use with the shared
    ``initial_value``, matching the paper's assumption of an initializing
    write of ``F_init`` preceding all operations).
    """

    def __init__(self, pid: PartyId, config: SystemConfig,
                 initial_value: bytes = b"",
                 max_listeners: Optional[int] = None):
        super().__init__(pid)
        self.config = config
        self._initial_value = initial_value
        self._initial_state: Optional[Tuple[Any, bytes, Any]] = None
        self._max_listeners = max_listeners
        self._registers: Dict[str, _RegisterState] = {}
        self.rbc = ReliableBroadcastServer(self, config, self._on_r_deliver)
        self.avid = AvidServer(self, config, self._on_disp_complete)
        self.on(MSG_GET_TS, self._on_get_ts)
        self.on(MSG_READ, self._on_read)
        self.on(MSG_READ_COMPLETE, self._on_read_complete)

    # -- register state -----------------------------------------------------

    def register_state(self, tag: str) -> _RegisterState:
        """The register's global variables (created lazily)."""
        if tag not in self._registers:
            if self._initial_state is None:
                blocks = self.config.coder.encode(self._initial_value)
                commitment, witnesses = \
                    self.config.commitment_scheme.commit(blocks)
                index = self.pid.index
                self._initial_state = (commitment, blocks[index - 1],
                                       witnesses[index - 1])
            commitment, block, witness = self._initial_state
            self._registers[tag] = _RegisterState(
                commitment=commitment, block=block, witness=witness,
                timestamp=INITIAL_TIMESTAMP,
                listeners=ListenerSet(capacity=self._max_listeners))
        return self._registers[tag]

    # -- client-facing handlers -------------------------------------------------

    def _on_get_ts(self, message: Message) -> None:
        if len(message.payload) != 1:
            return
        (oid,) = message.payload
        if not isinstance(oid, str):
            return  # byzantine oid: never echo unverified objects back
        state = self.register_state(message.tag)
        self.send(message.sender, message.tag, MSG_TS, oid,
                  *self._ts_reply(state))

    def _ts_reply(self, state: _RegisterState) -> Tuple[Any, ...]:
        """Payload appended to the ``ts`` reply after the oid.

        Protocol Atomic sends the bare timestamp; AtomicNS overrides this
        to also send the threshold signature ``sig_c``.
        """
        return (state.timestamp.ts,)

    def _on_read(self, message: Message) -> None:
        if len(message.payload) != 1:
            return
        (oid,) = message.payload
        if not isinstance(oid, str):
            return
        state = self.register_state(message.tag)
        if state.listeners.knows(oid):
            return  # duplicate read or already completed: stay silent
        # At the §3.5 capacity bound the registration fails; the reader
        # still gets one reply but no forwarding of later writes.
        state.listeners.add(oid, state.timestamp, message.sender)
        self.send(message.sender, message.tag, MSG_VALUE, oid,
                  state.commitment, state.block, state.witness,
                  state.timestamp)

    def _on_read_complete(self, message: Message) -> None:
        if len(message.payload) != 1:
            return
        (oid,) = message.payload
        if not isinstance(oid, str):
            return
        self.register_state(message.tag).listeners.retire(oid)

    # -- write path: join dispersal completion with the broadcast timestamp --

    def _on_disp_complete(self, tag: str, commitment: Any, client: PartyId,
                          block: bytes, witness: Any) -> None:
        parsed = _parse_subtag(tag)
        if parsed is None or parsed[1] != "disp":
            return
        register_tag, _, oid = parsed
        state = self.register_state(register_tag)
        state.pending_disp.setdefault(oid, {})[client] = \
            (commitment, block, witness)
        self._try_join(register_tag, oid)

    def _on_r_deliver(self, tag: str, origin: PartyId,
                      value: Any) -> None:
        parsed = _parse_subtag(tag)
        if parsed is None or parsed[1] != "rbc":
            return
        register_tag, _, oid = parsed
        state = self.register_state(register_tag)
        state.pending_ts.setdefault(oid, {})[origin] = value
        self._try_join(register_tag, oid)

    def _try_join(self, register_tag: str, oid: str) -> None:
        """Fire the write once some party completed *both* halves."""
        state = self.register_state(register_tag)
        if oid in state.accepted:
            return
        for writer, broadcast_value in state.pending_ts.get(oid,
                                                            {}).items():
            if writer in state.pending_disp.get(oid, {}):
                state.accepted.add(oid)
                self._process_write(register_tag, oid, writer,
                                    broadcast_value, state)
                return

    def _process_write(self, register_tag: str, oid: str,
                       writer: PartyId, broadcast_value: Any,
                       state: _RegisterState) -> None:
        """Protocol Atomic: the broadcast value is the bare timestamp."""
        if not isinstance(broadcast_value, int) or broadcast_value < 0:
            return  # Byzantine writer broadcast garbage: never accept
        timestamp = Timestamp(broadcast_value + 1, oid)
        self._accept_write(register_tag, oid, writer, timestamp, state)

    def _accept_write(self, register_tag: str, oid: str, writer: PartyId,
                      timestamp: Timestamp, state: _RegisterState,
                      signature: Any = None,
                      ack_payload: Tuple[Any, ...] = ()) -> None:
        """Adopt the value if newer, notify listeners, ack, take effect."""
        commitment, block, witness = state.pending_disp[oid][writer]
        client = writer
        state.pending_disp.pop(oid, None)
        state.pending_ts.pop(oid, None)
        if state.timestamp < timestamp:
            state.commitment = commitment
            state.block = block
            state.witness = witness
            state.timestamp = timestamp
            state.signature = signature
        for listener_oid, listener in state.listeners.below(timestamp):
            self.send(listener, register_tag, MSG_VALUE, listener_oid,
                      commitment, block, witness, timestamp)
        self.send(client, register_tag, MSG_ACK, oid, *ack_payload)
        self.output(register_tag, "write-accepted", oid, timestamp)

    # -- measurements ----------------------------------------------------------

    def register_storage_bytes(self, tag: str) -> int:
        """Storage complexity of one register's global variables
        (``D_c, F_c, ts_c, oid_c, sig_c`` plus the listener set)."""
        state = self.register_state(tag)
        total = encoded_size((state.commitment, state.block, state.witness,
                              state.timestamp, state.signature))
        total += state.listeners.storage_bytes()
        return total

    def storage_bytes(self) -> int:
        """All register state plus transient substrate buffers."""
        total = sum(self.register_storage_bytes(tag)
                    for tag in self._registers)
        total += self.rbc.storage_bytes()
        total += self.avid.storage_bytes()
        return total


class AtomicClient(RegisterClientBase):
    """Client ``C_i`` of Protocol Atomic (write of Figure 1, read of
    Figure 2).

    ``bounded_memory`` enables the client-memory scheme the paper points
    to (§3.2: "in practice, one would use the elegant scheme of Martin et
    al. that bounds the memory of the clients"): instead of retaining the
    whole set ``B`` of value messages, the reader considers only the
    *highest-TIMESTAMPed* valid message per server — ``O(n)`` entries.
    Liveness is preserved because every honest server eventually reports
    the largest TIMESTAMP, so the terminating quorum always forms among
    the per-server maxima.
    """

    def __init__(self, pid: PartyId, config: SystemConfig,
                 bounded_memory: bool = False):
        super().__init__(pid, config)
        self.bounded_memory = bounded_memory

    # -- write ---------------------------------------------------------------

    def _write_thread(self, handle: OperationHandle):
        tag, oid = handle.tag, handle.oid
        self.send_to_servers(tag, MSG_GET_TS, oid)
        replies = yield self.condition_quorum(
            tag, MSG_TS, self.config.quorum,
            where=lambda m: (m.sender.is_server
                             and len(m.payload) >= 2
                             and m.payload[0] == oid
                             and self._valid_ts_reply(tag, m.payload)))
        broadcast_value = self._choose_broadcast_value(tag, replies)
        disperse(self, disp_tag(tag, oid), handle.value, self.config)
        r_broadcast(self, rbc_tag(tag, oid), broadcast_value)
        yield self.condition_quorum(
            tag, MSG_ACK, self.config.quorum,
            where=lambda m: (m.sender.is_server and len(m.payload) >= 1
                             and m.payload[0] == oid))
        self._finish_write(handle)

    def _valid_ts_reply(self, tag: str, payload: Tuple[Any, ...]) -> bool:
        """Protocol Atomic accepts any non-negative integer timestamp."""
        return (len(payload) == 2 and isinstance(payload[1], int)
                and payload[1] >= 0)

    def _choose_broadcast_value(self, tag: str, replies) -> Any:
        """The value to r-broadcast: the largest received timestamp."""
        return max(message.payload[1] for message in replies)

    # -- read -----------------------------------------------------------------

    def _read_thread(self, handle: OperationHandle):
        tag, oid = handle.tag, handle.oid
        self.send_to_servers(tag, MSG_READ, oid)
        timestamp, _, quorum_messages = yield self._read_quorum_condition(
            tag, oid)
        self.send_to_servers(tag, MSG_READ_COMPLETE, oid)
        pairs = [(message.sender.index, message.payload[2])
                 for message in quorum_messages]
        value = self.config.coder.decode(pairs[: self.config.k])
        self._finish_read(handle, value, timestamp)

    def _read_quorum_condition(self, tag: str, oid: str):
        """Condition: ``n - t`` distinct servers sent valid ``value``
        messages agreeing on one ``(commitment, TIMESTAMP)`` pair.

        Returns ``(timestamp, commitment, messages)`` for the first such
        group.  Block validity checks are memoized per message.
        """
        memo: Dict[int, bool] = {}
        scheme = self.config.commitment_scheme
        quorum = self.config.quorum

        def valid(message: Message) -> bool:
            cached = memo.get(message.msg_id)
            if cached is None:
                payload = message.payload
                well_formed = (
                    message.sender.is_server
                    and len(payload) == 5
                    and payload[0] == oid
                    and isinstance(payload[4], Timestamp))
                cached = well_formed and scheme.verify(
                    payload[1], message.sender.index,
                    payload[2], payload[3])
                if well_formed and not cached:
                    # A shape-correct reply with a bad witness can only
                    # come from a Byzantine server; the memo entry keeps
                    # the report to once per message.
                    self.note_verification_failure(tag, MSG_VALUE,
                                                   message.sender)
                memo[message.msg_id] = cached
            return cached

        def check():
            candidates = self.inbox.messages(tag, MSG_VALUE, where=valid)
            if self.bounded_memory:
                # Martin et al.'s bound: keep one entry per server — the
                # highest-TIMESTAMPed valid message it sent.
                latest: Dict[PartyId, Message] = {}
                for message in candidates:
                    kept = latest.get(message.sender)
                    if kept is None or \
                            kept.payload[4] < message.payload[4]:
                        latest[message.sender] = message
                candidates = list(latest.values())
            groups: Dict[bytes, Dict[PartyId, Message]] = {}
            for message in candidates:
                key = encode((message.payload[1], message.payload[4]))
                group = groups.setdefault(key, {})
                group.setdefault(message.sender, message)
            for group in groups.values():
                if len(group) >= quorum:
                    messages = list(group.values())
                    first = messages[0]
                    return (first.payload[4], first.payload[1], messages)
            return None

        return check
