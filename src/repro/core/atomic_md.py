"""Protocol AtomicMd — metadata/data separation with k-server reads.

A fast-path variant of Protocol Atomic in the spirit of MDStore
(*Erasure-Coded Byzantine Storage with Separate Metadata*) and
PoWerStore's metadata-only rounds: the **metadata plane** (timestamps
and cross-checksums — tiny messages) runs at full ``n - t`` quorums,
while the **data plane** (erasure-coded blocks) is pushed point-to-point
on writes and fetched from only ``k`` servers on reads, with
verified-against-metadata escalation to further servers when a block
fails verification or a queried server reports a miss.

Write (client ``C_i``, value ``F``, operation identifier ``oid``):
  1. query all servers for their timestamps (``md-get-ts``), take the
     maximum ``ts`` among ``n - t`` replies (metadata plane);
  2. encode ``F`` into blocks, commit to the cross-checksum ``D``, and
     send each server *only its own* block ``[D, F_j, w_j]``
     (``md-store`` — data plane, ``O(n)`` block messages instead of
     AVID's ``O(n^2)`` echo traffic);
  3. r-broadcast the pair ``(ts, D)`` (tag ``ID|rbc.oid`` — metadata
     plane), binding every honest server to one timestamp *and* one
     cross-checksum for this write;
  4. wait for ``n - t`` ``md-ack`` messages.

Server ``P_j`` joins the r-delivered ``(ts, D)`` with a block that
*verified against* ``D`` from the same writer, then adopts
``[D, F_j, ts + 1, oid]`` if it exceeds the stored TIMESTAMP, forwards
**metadata only** (``md-meta``) to registered listeners, acks, and
outputs ``write-accepted``.  Accepted versions are retained in a bounded
per-register history so readers can fetch blocks for a timestamp that
was current when the metadata quorum formed.

Read (client ``C_i``, operation identifier ``oid``):
  1. send ``md-read`` to all servers; collect ``md-meta`` replies until
     ``n - t`` distinct servers agree on one ``(D, TIMESTAMP)`` pair
     (metadata plane — no blocks on the wire);
  2. request blocks (``md-get-block``) from ``k`` of the agreeing
     servers (data plane); verify each ``md-block`` against ``D``;
  3. **escalate**: a block that fails verification, or an ``md-block-miss``
     (the server evicted that version), triggers a request to the next
     agreeing server — including servers that joined the agreeing group
     after the quorum formed;
  4. on ``k`` verified blocks: decode, send ``md-read-complete``,
     return.

Fault model: Byzantine servers, **crash-only clients** — the model of
MDStore and PoWerStore.  Dropping AVID means a Byzantine *writer* could
disperse inconsistently-encoded blocks (the Section 5 "poisonous write"
vector); AtomicMd trades that protection for an ``O(n)`` data plane and
is therefore registered alongside, not in place of, Protocol Atomic.

Resilience: ``n > 3t`` as everywhere, plus ``k <= n - 2t`` so that any
agreeing metadata quorum contains at least ``k`` honest servers to serve
blocks — the canonical choice is ``k = t + 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.broadcast.reliable import ReliableBroadcastServer, r_broadcast
from repro.common.errors import ConfigurationError
from repro.common.ids import PartyId
from repro.common.serialization import encode, encoded_size
from repro.config import SystemConfig
from repro.core.atomic import parse_subtag, rbc_tag
from repro.core.listeners import ListenerSet
from repro.core.register import (
    KIND_VALIDATE,
    OperationHandle,
    RegisterClientBase,
)
from repro.core.timestamps import INITIAL_TIMESTAMP, Timestamp
from repro.net.message import Message
from repro.net.process import Process

MSG_GET_TS = "md-get-ts"
MSG_TS = "md-ts"
MSG_STORE = "md-store"
MSG_ACK = "md-ack"
MSG_READ = "md-read"
MSG_META = "md-meta"
MSG_GET_BLOCK = "md-get-block"
MSG_BLOCK = "md-block"
MSG_BLOCK_MISS = "md-block-miss"
MSG_READ_COMPLETE = "md-read-complete"
MSG_VALIDATE = "md-validate"
MSG_VALID = "md-valid"
MSG_REPAIR = "md-repair"
MSG_REPAIR_ACK = "md-repair-ack"

#: every wire message type of AtomicMd, for observability tooling
#: (per-mtype instruments, phase classification, plane attribution)
MESSAGE_TYPES = (MSG_GET_TS, MSG_TS, MSG_STORE, MSG_ACK, MSG_READ,
                 MSG_META, MSG_GET_BLOCK, MSG_BLOCK, MSG_BLOCK_MISS,
                 MSG_READ_COMPLETE, MSG_VALIDATE, MSG_VALID,
                 MSG_REPAIR, MSG_REPAIR_ACK)

#: message types that carry erasure-coded blocks (the data plane); the
#: remaining AtomicMd traffic is timestamps and cross-checksums only.
#: ``md-repair`` re-disperses a reconstructed block to one server, so
#: it rides the data plane like the write path's ``md-store``.
DATA_PLANE_TYPES = (MSG_STORE, MSG_BLOCK, MSG_REPAIR)

#: accepted versions retained per register for late block fetches.
DEFAULT_HISTORY_LIMIT = 16


def validate_md_config(config: SystemConfig) -> SystemConfig:
    """Check the AtomicMd resilience requirement ``k <= n - 2t``.

    An agreeing metadata quorum has ``n - t`` members of which up to
    ``t`` are Byzantine, so only ``n - 2t`` block fetches are guaranteed
    to be served honestly; a coder needing more than that could stall
    reads.  Deployment-shape validation, not a quorum wait.
    """
    honest_in_quorum = config.quorum - config.t
    if config.k > honest_in_quorum:
        raise ConfigurationError(
            f"atomic_md requires k <= n - 2t for read liveness, got "
            f"k={config.k} with n={config.n} t={config.t}; "
            f"use SystemConfig(n, t, k={config.t + 1})")
    return config


@dataclass
class _MdRegisterState:
    """Global variables of one AtomicMd register at one server."""

    commitment: Any
    block: bytes
    witness: Any
    timestamp: Timestamp
    listeners: ListenerSet = field(default_factory=ListenerSet)
    #: accepted versions by TIMESTAMP (insertion == acceptance order),
    #: bounded by the server's ``history_limit``; always contains the
    #: currently adopted version.
    history: Dict[Timestamp, Tuple[Any, bytes, Any]] = \
        field(default_factory=dict)
    # Join state for in-flight writes, per origin (see Protocol Atomic:
    # a write fires only when one party owns both halves).
    pending_meta: Dict[str, Dict[PartyId, Any]] = field(default_factory=dict)
    pending_store: Dict[str, Dict[PartyId, Tuple[Any, bytes, Any]]] = \
        field(default_factory=dict)
    accepted: Set[str] = field(default_factory=set)


class AtomicMdServer(Process):
    """Server ``P_j`` of Protocol AtomicMd.

    Like :class:`~repro.core.atomic.AtomicServer`, one server process
    simulates any number of registers keyed by tag.  The differences are
    the data plane (blocks arrive point-to-point via ``md-store`` and
    are served on demand via ``md-get-block``) and listener forwarding,
    which carries metadata only.
    """

    def __init__(self, pid: PartyId, config: SystemConfig,
                 initial_value: bytes = b"",
                 max_listeners: Optional[int] = None,
                 history_limit: int = DEFAULT_HISTORY_LIMIT):
        super().__init__(pid)
        self.config = validate_md_config(config)
        self._initial_value = initial_value
        self._initial_state: Optional[Tuple[Any, bytes, Any]] = None
        self._max_listeners = max_listeners
        self.history_limit = max(1, history_limit)
        self._registers: Dict[str, _MdRegisterState] = {}
        self.rbc = ReliableBroadcastServer(self, config, self._on_r_deliver)
        self.on(MSG_GET_TS, self._on_get_ts)
        self.on(MSG_STORE, self._on_store)
        self.on(MSG_READ, self._on_read)
        self.on(MSG_GET_BLOCK, self._on_get_block)
        self.on(MSG_READ_COMPLETE, self._on_read_complete)
        self.on(MSG_VALIDATE, self._on_validate)
        self.on(MSG_REPAIR, self._on_repair)

    # -- register state -----------------------------------------------------

    def register_state(self, tag: str) -> _MdRegisterState:
        """The register's global variables (created lazily)."""
        if tag not in self._registers:
            if self._initial_state is None:
                blocks = self.config.coder.encode(self._initial_value)
                commitment, witnesses = \
                    self.config.commitment_scheme.commit(blocks)
                index = self.pid.index
                self._initial_state = (commitment, blocks[index - 1],
                                       witnesses[index - 1])
            commitment, block, witness = self._initial_state
            state = _MdRegisterState(
                commitment=commitment, block=block, witness=witness,
                timestamp=INITIAL_TIMESTAMP,
                listeners=ListenerSet(capacity=self._max_listeners))
            state.history[INITIAL_TIMESTAMP] = (commitment, block, witness)
            self._registers[tag] = state
        return self._registers[tag]

    # -- metadata plane: timestamps and read metadata ----------------------

    def _on_get_ts(self, message: Message) -> None:
        if len(message.payload) != 1:
            return
        (oid,) = message.payload
        if not isinstance(oid, str):
            return  # byzantine oid: never echo unverified objects back
        state = self.register_state(message.tag)
        self.send(message.sender, message.tag, MSG_TS, oid,
                  state.timestamp.ts)

    def _on_read(self, message: Message) -> None:
        if len(message.payload) != 1:
            return
        (oid,) = message.payload
        if not isinstance(oid, str):
            return
        state = self.register_state(message.tag)
        if state.listeners.knows(oid):
            return  # duplicate read or already completed: stay silent
        state.listeners.add(oid, state.timestamp, message.sender)
        self.send(message.sender, message.tag, MSG_META, oid,
                  state.commitment, state.timestamp)

    def _on_validate(self, message: Message) -> None:
        """Answer a metadata-only revalidation probe with the *full*
        current TIMESTAMP.

        Unlike ``md-ts`` (which carries only the integer ``ts`` for the
        writer's increment) the reply includes the writer-id tiebreak:
        two concurrent writes can share the integer while naming
        different values, so a cache revalidated on the bare integer
        could confirm the wrong one.  Stateless and side-effect free —
        no listener registration, nothing adopted.
        """
        if len(message.payload) != 1:
            return
        (oid,) = message.payload
        if not isinstance(oid, str):
            return
        state = self.register_state(message.tag)
        self.send(message.sender, message.tag, MSG_VALID, oid,
                  state.timestamp)

    def _on_read_complete(self, message: Message) -> None:
        if len(message.payload) != 1:
            return
        (oid,) = message.payload
        if not isinstance(oid, str):
            return
        self.register_state(message.tag).listeners.retire(oid)

    # -- data plane: block ingest and on-demand serving --------------------

    def _on_store(self, message: Message) -> None:
        """Ingest this server's own block of a write, verified against
        the carried cross-checksum before touching join state."""
        if len(message.payload) != 4 or message.sender.is_server:
            return  # only clients write; servers never push blocks
        oid, commitment, block, witness = message.payload
        if not isinstance(oid, str) or not isinstance(block, bytes):
            return
        if not self.config.commitment_scheme.verify(
                commitment, self.pid.index, block, witness):
            self.note_verification_failure(message.tag, MSG_STORE,
                                           message.sender)
            return
        state = self.register_state(message.tag)
        state.pending_store.setdefault(oid, {}).setdefault(
            message.sender, (commitment, block, witness))
        self._try_join(message.tag, oid)

    def _on_get_block(self, message: Message) -> None:
        """Serve the stored block of one accepted version, or report a
        miss (the version was evicted from the bounded history) so the
        reader escalates to another agreeing server."""
        if len(message.payload) != 2:
            return
        oid, timestamp = message.payload
        if not isinstance(oid, str) or not isinstance(timestamp, Timestamp):
            return
        state = self.register_state(message.tag)
        entry = state.history.get(timestamp)
        if entry is None:
            self.send(message.sender, message.tag, MSG_BLOCK_MISS, oid,
                      timestamp)
            return
        _, block, witness = entry
        self.send(message.sender, message.tag, MSG_BLOCK, oid, timestamp,
                  block, witness)

    def _on_repair(self, message: Message) -> None:
        """Ingest a re-dispersed block from the repair plane.

        A repair client reconstructed the register's value from ``k``
        blocks that verified against a quorum-agreed cross-checksum,
        re-encoded it, and is re-storing this server's own block under
        the version's *original* TIMESTAMP — so repair never advances
        logical time, it only restores redundancy.  The block must
        verify against the carried cross-checksum before anything is
        touched, exactly like ``md-store``; like the write path, the
        sender is trusted to *name* the version honestly because
        clients are crash-only in this model (a Byzantine repairer
        could install a forged commitment — see docs/ROBUSTNESS.md for
        why repair authority stays with the trusted operator plane).

        The version is retained in the history and adopted if newer
        than the stored one (a replacement server starts amnesiac at
        the initial TIMESTAMP, so adoption is the common case);
        listeners hear metadata only, as with any accepted write.
        """
        if len(message.payload) != 5 or message.sender.is_server:
            return  # repair is client-plane traffic, like md-store
        oid, timestamp, commitment, block, witness = message.payload
        if not isinstance(oid, str) or not isinstance(block, bytes) \
                or not isinstance(timestamp, Timestamp):
            return
        if not self.config.commitment_scheme.verify(
                commitment, self.pid.index, block, witness):
            self.note_verification_failure(message.tag, MSG_REPAIR,
                                           message.sender)
            return
        state = self.register_state(message.tag)
        self._remember(state, timestamp, commitment, block, witness)
        if state.timestamp < timestamp:
            state.commitment = commitment
            state.block = block
            state.witness = witness
            state.timestamp = timestamp
            for listener_oid, listener in state.listeners.below(timestamp):
                self.send(listener, message.tag, MSG_META, listener_oid,
                          commitment, timestamp)
        self.send(message.sender, message.tag, MSG_REPAIR_ACK, oid,
                  timestamp)
        self.output(message.tag, "repair-accepted", oid, timestamp)

    # -- write path: join the verified block with the broadcast metadata ---

    def _on_r_deliver(self, tag: str, origin: PartyId, value: Any) -> None:
        parsed = parse_subtag(tag)
        if parsed is None or parsed[1] != "rbc":
            return
        register_tag, _, oid = parsed
        state = self.register_state(register_tag)
        state.pending_meta.setdefault(oid, {})[origin] = value
        self._try_join(register_tag, oid)

    def _try_join(self, register_tag: str, oid: str) -> None:
        """Fire the write once some party owns both halves *and* the
        broadcast cross-checksum matches the one its block verified
        against (a writer whose halves disagree never takes effect)."""
        state = self.register_state(register_tag)
        if oid in state.accepted:
            return
        for writer, meta in state.pending_meta.get(oid, {}).items():
            stored = state.pending_store.get(oid, {}).get(writer)
            if stored is None:
                continue
            if not isinstance(meta, tuple) or len(meta) != 2:
                continue  # Byzantine writer broadcast garbage
            ts, commitment = meta
            if not isinstance(ts, int) or ts < 0:
                continue
            if encode(commitment) != encode(stored[0]):
                continue  # halves disagree: never accept
            state.accepted.add(oid)
            self._accept_write(register_tag, oid, writer,
                               Timestamp(ts + 1, oid), state)
            return

    def _accept_write(self, register_tag: str, oid: str, writer: PartyId,
                      timestamp: Timestamp, state: _MdRegisterState) -> None:
        """Adopt the version if newer, record it in the history, notify
        listeners with metadata only, ack, take effect."""
        commitment, block, witness = state.pending_store[oid][writer]
        state.pending_store.pop(oid, None)
        state.pending_meta.pop(oid, None)
        self._remember(state, timestamp, commitment, block, witness)
        if state.timestamp < timestamp:
            state.commitment = commitment
            state.block = block
            state.witness = witness
            state.timestamp = timestamp
        for listener_oid, listener in state.listeners.below(timestamp):
            self.send(listener, register_tag, MSG_META, listener_oid,
                      commitment, timestamp)
        self.send(writer, register_tag, MSG_ACK, oid)
        self.output(register_tag, "write-accepted", oid, timestamp)

    def _remember(self, state: _MdRegisterState, timestamp: Timestamp,
                  commitment: Any, block: bytes, witness: Any) -> None:
        """Retain an accepted version; evict the oldest-accepted entry
        beyond the bound, never the currently adopted one."""
        state.history[timestamp] = (commitment, block, witness)
        while len(state.history) > self.history_limit:
            for old in state.history:
                if old != state.timestamp and old != timestamp:
                    del state.history[old]
                    break
            else:
                return  # nothing evictable (limit of 1)

    # -- measurements -------------------------------------------------------

    def register_storage_bytes(self, tag: str) -> int:
        """Storage complexity of one register: current version, bounded
        history, and the listener set."""
        state = self.register_state(tag)
        total = encoded_size((state.commitment, state.block, state.witness,
                              state.timestamp))
        for timestamp, (commitment, block, witness) in \
                state.history.items():
            total += encoded_size((timestamp, commitment, block, witness))
        total += state.listeners.storage_bytes()
        return total

    def storage_bytes(self) -> int:
        """All register state plus transient substrate buffers."""
        total = sum(self.register_storage_bytes(tag)
                    for tag in self._registers)
        total += self.rbc.storage_bytes()
        return total


class AtomicMdClient(RegisterClientBase):
    """Client ``C_i`` of Protocol AtomicMd.

    Writes run one metadata round plus ``n`` point-to-point block
    pushes; reads run one metadata quorum plus ``k`` block fetches with
    escalation.  Requires ``k <= n - 2t`` (see
    :func:`validate_md_config`).
    """

    def __init__(self, pid: PartyId, config: SystemConfig):
        super().__init__(pid, validate_md_config(config))

    # -- write --------------------------------------------------------------

    def _write_thread(self, handle: OperationHandle):
        tag, oid = handle.tag, handle.oid
        self.send_to_servers(tag, MSG_GET_TS, oid)
        replies = yield self.condition_quorum(
            tag, MSG_TS, self.config.quorum,
            where=lambda m: (m.sender.is_server
                             and len(m.payload) == 2
                             and m.payload[0] == oid
                             and isinstance(m.payload[1], int)
                             and m.payload[1] >= 0))
        ts = max(message.payload[1] for message in replies)
        blocks = self.config.coder.encode(handle.value)
        commitment, witnesses = \
            self.config.commitment_scheme.commit(blocks)
        # Data plane: each server gets only its own block — O(n) block
        # messages in place of AVID's O(n^2) echo traffic.
        for server in self._require_simulator().server_pids:
            index = server.index
            self.send(server, tag, MSG_STORE, oid, commitment,
                      blocks[index - 1], witnesses[index - 1])
        # Metadata plane: bind every honest server to one (ts, D) pair.
        r_broadcast(self, rbc_tag(tag, oid), (ts, commitment))
        yield self.condition_quorum(
            tag, MSG_ACK, self.config.quorum,
            where=lambda m: (m.sender.is_server and len(m.payload) == 1
                             and m.payload[0] == oid))
        self._finish_write(handle)
        # Expose the TIMESTAMP the acked write took effect with (the
        # servers adopt exactly ``Timestamp(ts + 1, oid)``) so session
        # caches can seed from acked writes, mirroring ``_finish_read``.
        handle.timestamp = Timestamp(ts + 1, oid)

    # -- metadata-only revalidation -----------------------------------------

    def invoke_validate(self, tag: str, oid: str) -> OperationHandle:
        """Start a metadata-only revalidation round; the handle's
        ``timestamp`` holds the freshest quorum TIMESTAMP once done.

        The round queries all servers and takes the maximum full
        TIMESTAMP among ``n - t`` replies.  Any such quorum intersects
        the metadata quorum of every completed write in at least
        ``n - 2t >= t + 1`` servers — one honest — so the maximum is at
        least the TIMESTAMP of every write that completed before the
        round began.  A cached pair whose TIMESTAMP equals that maximum
        is therefore still current, and serving it linearizes the read
        inside the revalidation round.  No blocks move; this is not a
        register operation of Definition 1 and never enters histories.
        """
        handle = self._new_handle(KIND_VALIDATE, tag, oid)
        self.record_input(tag, "validate", oid)
        handle.invoke_time = self.simulator.time
        self.start_thread(self._validate_thread(handle))
        return handle

    def _validate_thread(self, handle: OperationHandle):
        tag, oid = handle.tag, handle.oid
        self.send_to_servers(tag, MSG_VALIDATE, oid)
        replies = yield self.condition_quorum(
            tag, MSG_VALID, self.config.quorum,
            where=lambda m: (m.sender.is_server
                             and len(m.payload) == 2
                             and m.payload[0] == oid
                             and isinstance(m.payload[1], Timestamp)))
        timestamp = max(message.payload[1] for message in replies)
        self.output(tag, "validate", oid)
        handle._complete(self.simulator.time, timestamp=timestamp)
        handle.latency_rounds = self.activation_depth
        handle.completion_cause = self.activation_msg_id

    # -- read ---------------------------------------------------------------

    def _read_thread(self, handle: OperationHandle):
        tag, oid = handle.tag, handle.oid
        self.send_to_servers(tag, MSG_READ, oid)
        timestamp, _, pairs = yield self._read_condition(tag, oid)
        self.send_to_servers(tag, MSG_READ_COMPLETE, oid)
        value = self.config.coder.decode(pairs[: self.config.k])
        self._finish_read(handle, value, timestamp)

    def _read_condition(self, tag: str, oid: str):
        """Condition: a metadata quorum agrees on one ``(D, TIMESTAMP)``
        pair *and* ``k`` verified blocks for it have arrived.

        The closure drives the data plane itself: once a quorum group
        forms it requests blocks from ``k`` of the agreeing servers, and
        each failed verification or ``md-block-miss`` escalates to the
        next agreeing server (requests are memoized per server, so
        re-evaluation is idempotent).  If a group stalls with its whole
        pool exhausted, the group with the next-largest TIMESTAMP that
        reaches quorum takes over — returning any quorum-agreed pair
        preserves atomicity exactly as in Protocol Atomic.
        """
        scheme = self.config.commitment_scheme
        quorum = self.config.quorum
        k = self.config.k
        meta_memo: Dict[int, bool] = {}
        block_memo: Dict[Tuple[int, bytes], bool] = {}
        #: per target key: servers already asked for this version's block
        queried: Dict[bytes, Set[PartyId]] = {}

        def meta_valid(message: Message) -> bool:
            cached = meta_memo.get(message.msg_id)
            if cached is None:
                payload = message.payload
                cached = (message.sender.is_server
                          and len(payload) == 3
                          and payload[0] == oid
                          and isinstance(payload[2], Timestamp))
                meta_memo[message.msg_id] = cached
            return cached

        def block_valid(message: Message, key: bytes, commitment: Any,
                        timestamp: Timestamp) -> bool:
            cached = block_memo.get((message.msg_id, key))
            if cached is None:
                payload = message.payload
                well_formed = (message.sender.is_server
                               and len(payload) == 4
                               and payload[0] == oid
                               and payload[1] == timestamp
                               and isinstance(payload[2], bytes))
                cached = well_formed and scheme.verify(
                    commitment, message.sender.index, payload[2],
                    payload[3])
                if well_formed and not cached:
                    # A shape-correct block failing the cross-checksum
                    # can only come from a Byzantine server; memoized so
                    # the report fires once per (message, target).
                    self.note_verification_failure(tag, MSG_BLOCK,
                                                   message.sender)
                block_memo[(message.msg_id, key)] = cached
            return cached

        def check():
            candidates = self.inbox.messages(tag, MSG_META,
                                             where=meta_valid)
            groups: Dict[bytes, Dict[PartyId, Message]] = {}
            for message in candidates:
                key = encode((message.payload[1], message.payload[2]))
                groups.setdefault(key, {}).setdefault(message.sender,
                                                      message)
            agreed = [(key, group) for key, group in groups.items()
                      if len(group) >= quorum]
            if not agreed:
                return None
            # Largest TIMESTAMP first: under churn the freshest agreed
            # version has the best block availability.
            agreed.sort(key=lambda item: next(
                iter(item[1].values())).payload[2], reverse=True)
            fetches = self.inbox.messages(tag, MSG_BLOCK)
            misses = self.inbox.messages(tag, MSG_BLOCK_MISS)
            for key, group in agreed:
                first = next(iter(group.values()))
                commitment = first.payload[1]
                timestamp = first.payload[2]
                verified: Dict[PartyId, Message] = {}
                for message in fetches:
                    if message.sender not in verified and block_valid(
                            message, key, commitment, timestamp):
                        verified[message.sender] = message
                if len(verified) >= k:
                    pairs = [(message.sender.index, message.payload[2])
                             for message in verified.values()]
                    return (timestamp, commitment, pairs)
                # Escalation: keep exactly enough outstanding requests
                # to cover the shortfall, drawing from agreeing servers
                # (the pool grows as listener forwards arrive).
                asked = queried.setdefault(key, set())
                failed = {message.sender for message in misses
                          if len(message.payload) == 2
                          and message.payload[0] == oid
                          and message.payload[1] == timestamp}
                failed.update(
                    message.sender for message in fetches
                    if message.sender in asked
                    and message.sender not in verified
                    and not block_valid(message, key, commitment,
                                        timestamp))
                outstanding = len(asked - failed) - len(verified)
                needed = k - len(verified)
                for server in group:
                    if outstanding >= needed:
                        break
                    if server in asked:
                        continue
                    asked.add(server)
                    outstanding += 1
                    self.send(server, tag, MSG_GET_BLOCK, oid, timestamp)
            return None

        return check
