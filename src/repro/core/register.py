"""Client-side register operations and their observable handles.

Definition 1 of the paper specifies the interface of an atomic register
simulation protocol: clients invoke *write* and *read* operations named by
unique operation identifiers; operations terminate by generating output
actions, and servers signal accepted writes with ``write-accepted`` output
actions.  :class:`OperationHandle` captures one operation's lifecycle so
harnesses can build histories and check atomicity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.common.errors import ProtocolError
from repro.common.ids import PartyId
from repro.config import SystemConfig
from repro.net.process import Process

KIND_WRITE = "write"
KIND_READ = "read"
#: Metadata-only revalidation round (protocols with a metadata plane);
#: completes with a TIMESTAMP and no value — not a register operation
#: of Definition 1, so it never enters operation histories.
KIND_VALIDATE = "validate"


@dataclass
class OperationHandle:
    """Observable state of one register operation at an honest client.

    ``invoke_time`` / ``complete_time`` are logical global-clock values, so
    the *precedes* relation of the paper is ``a.complete_time <
    b.invoke_time``.  For reads, ``result`` holds the returned value and
    ``timestamp`` the TIMESTAMP it was read with (exposed for analysis;
    not part of the register interface).
    """

    kind: str
    tag: str
    oid: str
    client: PartyId
    value: Optional[bytes] = None
    result: Optional[bytes] = None
    timestamp: Any = None
    invoke_time: Optional[int] = None
    complete_time: Optional[int] = None
    #: causal depth at completion == operation latency in message rounds
    latency_rounds: Optional[int] = None
    #: ``msg_id`` of the delivery that completed the operation — the
    #: anchor for :mod:`repro.obs.critical_path`'s happens-before walk
    completion_cause: Optional[int] = None

    @property
    def done(self) -> bool:
        return self.complete_time is not None

    def _complete(self, time: int, result: Optional[bytes] = None,
                  timestamp: Any = None) -> None:
        if self.done:
            raise ProtocolError(
                f"operation {self.oid} generated two output actions")
        self.complete_time = time
        self.result = result
        self.timestamp = timestamp


class RegisterClientBase(Process):
    """Shared machinery of register protocol clients.

    Subclasses implement ``_write_thread`` / ``_read_thread`` as generator
    protocols; this base manages operation handles, input/output actions,
    and uniqueness of operation identifiers.
    """

    def __init__(self, pid: PartyId, config: SystemConfig):
        super().__init__(pid)
        self.config = config
        self._operations = {}

    # -- invocation API ---------------------------------------------------

    def invoke_write(self, tag: str, oid: str,
                     value: bytes) -> OperationHandle:
        """Invoke ``(ID, in, write, oid, F)``; returns the handle that
        completes when the write's ``ack`` output action fires."""
        handle = self._new_handle(KIND_WRITE, tag, oid, value=value)
        self.record_input(tag, "write", oid)
        handle.invoke_time = self.simulator.time
        self.start_thread(self._write_thread(handle))
        return handle

    def invoke_read(self, tag: str, oid: str) -> OperationHandle:
        """Invoke ``(ID, in, read, oid)``; the handle's ``result`` holds
        the returned value once done."""
        handle = self._new_handle(KIND_READ, tag, oid)
        self.record_input(tag, "read", oid)
        handle.invoke_time = self.simulator.time
        self.start_thread(self._read_thread(handle))
        return handle

    def _new_handle(self, kind: str, tag: str, oid: str,
                    value: Optional[bytes] = None) -> OperationHandle:
        if not oid:
            raise ProtocolError("operation identifiers must be non-empty")
        key = (tag, oid)
        if key in self._operations:
            raise ProtocolError(
                f"operation identifier {oid!r} reused for register {tag!r}")
        handle = OperationHandle(kind=kind, tag=tag, oid=oid,
                                 client=self.pid, value=value)
        self._operations[key] = handle
        return handle

    def operation(self, tag: str, oid: str) -> OperationHandle:
        """Look up the handle of a previously invoked operation."""
        return self._operations[(tag, oid)]

    @property
    def operations(self):
        """All handles created at this client, in invocation order."""
        return list(self._operations.values())

    # -- completion helpers ------------------------------------------------

    def _finish_write(self, handle: OperationHandle) -> None:
        self.output(handle.tag, "ack", handle.oid)
        handle._complete(self.simulator.time)
        handle.latency_rounds = self.activation_depth
        handle.completion_cause = self.activation_msg_id

    def _finish_read(self, handle: OperationHandle, value: bytes,
                     timestamp: Any) -> None:
        self.output(handle.tag, "read", handle.oid, value)
        handle._complete(self.simulator.time, result=value,
                         timestamp=timestamp)
        handle.latency_rounds = self.activation_depth
        handle.completion_cause = self.activation_msg_id

    # -- protocol threads (subclass responsibility) ---------------------------

    def _write_thread(self, handle: OperationHandle):
        raise NotImplementedError

    def _read_thread(self, handle: OperationHandle):
        raise NotImplementedError
