"""The paper's core contribution: Protocols Atomic and AtomicNS.

Erasure-coded simulation of multi-writer multi-reader atomic registers in
an asynchronous Byzantine message-passing system with optimal resilience
(``n > 3t`` servers, arbitrarily many Byzantine clients), plus the
threshold-signature-based non-skipping timestamp variant.
"""

from repro.core.atomic import (
    MSG_ACK,
    MSG_GET_TS,
    MSG_READ,
    MSG_READ_COMPLETE,
    MSG_TS,
    MSG_VALUE,
    AtomicClient,
    AtomicServer,
    disp_tag,
    rbc_tag,
)
from repro.core.atomic_ns import (
    MSG_SHARE,
    AtomicNSClient,
    AtomicNSServer,
    timestamp_signature_valid,
)
from repro.core.listeners import ListenerSet
from repro.core.register import (
    KIND_READ,
    KIND_WRITE,
    OperationHandle,
    RegisterClientBase,
)
from repro.core.timestamps import BOTTOM_OID, INITIAL_TIMESTAMP, Timestamp

__all__ = [
    "MSG_ACK",
    "MSG_GET_TS",
    "MSG_READ",
    "MSG_READ_COMPLETE",
    "MSG_TS",
    "MSG_VALUE",
    "MSG_SHARE",
    "AtomicClient",
    "AtomicServer",
    "AtomicNSClient",
    "AtomicNSServer",
    "timestamp_signature_valid",
    "disp_tag",
    "rbc_tag",
    "ListenerSet",
    "KIND_READ",
    "KIND_WRITE",
    "OperationHandle",
    "RegisterClientBase",
    "BOTTOM_OID",
    "INITIAL_TIMESTAMP",
    "Timestamp",
]
