"""Ablation: Protocol Atomic *without* the listeners mechanism.

The listeners pattern (Martin et al.) is what makes reads wait-free under
concurrent writes: servers push every newer value to registered readers,
so a reader eventually assembles ``n - t`` matching replies no matter how
writes interleave.  This module removes it — servers answer each read
query once, and the reader *retries* whole query rounds until some
``(commitment, TIMESTAMP)`` group reaches ``n - t``.

What survives: safety.  Any group of ``n - t`` one-shot replies still
intersects every write quorum, so returned values are exactly as in
Protocol Atomic (reads linearize).  What is lost: wait-freedom — under
sustained concurrent writes a reader can retry unboundedly, and each
retry costs a fresh ``2n``-message round.  Experiment F9 (the ablation
bench) quantifies both effects; this is the design-choice justification
DESIGN.md calls out for the listeners mechanism.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from repro.common.errors import LivenessError
from repro.common.ids import PartyId
from repro.common.serialization import encode
from repro.core.atomic import (
    MSG_VALUE,
    AtomicClient,
    AtomicServer,
)
from repro.core.register import OperationHandle
from repro.core.timestamps import Timestamp
from repro.net.message import Message

MSG_READ_ONCE = "read-once"


class NoListenersServer(AtomicServer):
    """Server that answers read queries once, with no listener state.

    The write path is unchanged (it still serves whatever listeners
    exist, but none are ever registered).
    """

    def __init__(self, pid: PartyId, config, initial_value: bytes = b""):
        super().__init__(pid, config, initial_value)
        self.on(MSG_READ_ONCE, self._on_read_once)

    def _on_read_once(self, message: Message) -> None:
        if len(message.payload) != 2:
            return
        oid, round_no = message.payload
        if not isinstance(oid, str) or not isinstance(round_no, int):
            return  # byzantine query: never echo unverified objects back
        state = self.register_state(message.tag)
        self.send(message.sender, message.tag, MSG_VALUE,
                  (oid, round_no), state.commitment, state.block,
                  state.witness, state.timestamp)


class NoListenersClient(AtomicClient):
    """Client whose reads retry query rounds instead of listening.

    ``max_read_rounds`` bounds the retries (``None`` = unbounded); a read
    that exhausts its budget raises :class:`LivenessError` — surfacing
    the wait-freedom loss as an observable failure.
    """

    def __init__(self, pid: PartyId, config,
                 max_read_rounds: Optional[int] = None):
        super().__init__(pid, config)
        self._rounds = itertools.count(1)
        self.max_read_rounds = max_read_rounds
        #: per-oid count of query rounds the read needed (ablation metric)
        self.read_rounds: Dict[str, int] = {}

    def _read_thread(self, handle: OperationHandle):
        tag, oid = handle.tag, handle.oid
        quorum = self.config.quorum
        scheme = self.config.commitment_scheme
        attempts = 0
        while self.max_read_rounds is None or \
                attempts < self.max_read_rounds:
            attempts += 1
            self.read_rounds[oid] = attempts
            round_no = next(self._rounds)
            self.send_to_servers(tag, MSG_READ_ONCE, oid, round_no)
            memo: Dict[int, bool] = {}

            def valid(message: Message, r=round_no) -> bool:
                cached = memo.get(message.msg_id)
                if cached is None:
                    payload = message.payload
                    cached = (message.sender.is_server
                              and len(payload) == 5
                              and payload[0] == (oid, r)
                              and isinstance(payload[4], Timestamp)
                              and scheme.verify(payload[1],
                                                message.sender.index,
                                                payload[2], payload[3]))
                    memo[message.msg_id] = cached
                return cached

            replies = yield self.condition_quorum(tag, MSG_VALUE, quorum,
                                                  where=valid)
            groups: Dict[bytes, Dict[PartyId, Message]] = {}
            for message in replies:
                key = encode((message.payload[1], message.payload[4]))
                groups.setdefault(key, {}).setdefault(message.sender,
                                                      message)
            for group in groups.values():
                if len(group) >= quorum:
                    messages = list(group.values())
                    pairs = [(message.sender.index, message.payload[2])
                             for message in messages]
                    value = self.config.coder.decode(
                        pairs[: self.config.k])
                    self._finish_read(handle, value,
                                      messages[0].payload[4])
                    return
            # No group reached quorum: servers were caught mid-update by
            # concurrent writes.  Retry a fresh round.
        raise LivenessError(
            f"read {oid} found no stable quorum within "
            f"{self.max_read_rounds} rounds (no listeners)")
