"""Logical TIMESTAMPS ``[ts, oid]`` with the paper's lexicographic order.

Every written value carries a timestamp ``ts`` (an integer version number)
paired with the unique operation identifier ``oid`` of the write, breaking
ties between concurrent writers (Section 3.2, equation (1)):

    ``[ts, oid] < [ts', oid']  iff  ts < ts'  or  (ts = ts' and oid < oid')``

Operation identifiers are strings ordered canonically (Python string
order).  The initial register state has TIMESTAMP ``[0, ⊥]`` where ``⊥``
(the empty string) precedes every real identifier.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.serialization import register_wire_type

#: The ``⊥`` operation identifier of the initial value.
BOTTOM_OID = ""


@register_wire_type
@dataclass(frozen=True, order=True)
class Timestamp:
    """A TIMESTAMP ``[ts, oid]``; ordering is lexicographic, as dataclass
    field order gives exactly equation (1) of the paper."""

    ts: int
    oid: str

    def __post_init__(self) -> None:
        if self.ts < 0:
            raise ValueError("timestamps are non-negative")

    def next(self, oid: str) -> "Timestamp":
        """The TIMESTAMP a write with ``oid`` gets after broadcasting
        ``self.ts`` (the server-side increment)."""
        return Timestamp(self.ts + 1, oid)

    def __str__(self) -> str:
        return f"[{self.ts}, {self.oid or '⊥'}]"


#: TIMESTAMP of the initial register value ``F_init``.
INITIAL_TIMESTAMP = Timestamp(0, BOTTOM_OID)
