"""Operation and sub-protocol spans derived from a causal trace.

A *span* is a named interval of the logical global clock.  The span tree
of a run has one **operation span** per register operation (``write`` /
``read``, from the invocation input action to the completing output
action) with **phase spans** nested inside, derived from the hierarchical
tag scheme and the message types:

* traffic on sub-instance tags ``ID|disp.oid`` / ``ID|rbc.oid`` becomes
  the write's *disperse* / *rbc* phases;
* ``get-ts``/``ts`` traffic on the register tag is the *ts-query* phase,
  ``ack`` traffic the *quorum-wait* phase, and ``read`` / ``value`` /
  ``read-complete`` traffic the *retrieve* phase; AtomicNS's ``share``
  exchange is the *sig-round* phase;
* unknown message types fall back to the message type itself, so
  baseline protocols get phases for free (e.g. Martin et al.'s
  ``store``).

Each span carries logical open/close times, message and byte counts,
and annotations: quorum releases (which arrival tipped the threshold),
the servers that output ``write-accepted``, and the *tail* — traffic of
the operation's sub-protocols still draining after the client completed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.analysis.trace import match_operations
from repro.avid.disperse import MESSAGE_TYPES as DISPERSE_MESSAGE_TYPES
from repro.broadcast.reliable import MESSAGE_TYPES as RBC_MESSAGE_TYPES
from repro.common.ids import TAG_SEP, PartyId
from repro.net.message import EVENT_OUTPUT, LocalEvent
from repro.obs.recorder import MessageRecord, TraceRecorder

KIND_OPERATION = "operation"
KIND_PHASE = "phase"

PHASE_TS_QUERY = "ts-query"
PHASE_DISPERSE = "disperse"
PHASE_RBC = "rbc"
PHASE_QUORUM_WAIT = "quorum-wait"
PHASE_RETRIEVE = "retrieve"
PHASE_SIG_ROUND = "sig-round"
PHASE_BLOCK_PUSH = "block-push"
PHASE_BLOCK_FETCH = "block-fetch"
PHASE_LOCAL = "local"

#: register-tag message types -> phase
_MTYPE_PHASES = {
    "get-ts": PHASE_TS_QUERY,
    "ts": PHASE_TS_QUERY,
    "ack": PHASE_QUORUM_WAIT,
    "read": PHASE_RETRIEVE,
    "value": PHASE_RETRIEVE,
    "read-complete": PHASE_RETRIEVE,
    "share": PHASE_SIG_ROUND,
    # AtomicMd (metadata/data separation): the metadata plane maps onto
    # the classic phases, the data plane gets its own pair so critical-
    # path attribution can price block movement separately.
    "md-get-ts": PHASE_TS_QUERY,
    "md-ts": PHASE_TS_QUERY,
    "md-ack": PHASE_QUORUM_WAIT,
    "md-read": PHASE_RETRIEVE,
    "md-meta": PHASE_RETRIEVE,
    "md-read-complete": PHASE_RETRIEVE,
    "md-store": PHASE_BLOCK_PUSH,
    "md-get-block": PHASE_BLOCK_FETCH,
    "md-block": PHASE_BLOCK_FETCH,
    "md-block-miss": PHASE_BLOCK_FETCH,
}

#: sub-protocol substrate message types -> phase (from the substrates'
#: own wire-type registries)
_SUBSTRATE_PHASES = {
    **{mtype: PHASE_DISPERSE for mtype in DISPERSE_MESSAGE_TYPES},
    **{mtype: PHASE_RBC for mtype in RBC_MESSAGE_TYPES},
}

#: sub-instance tag components (``disp.oid`` -> ``disp``) -> phase
_SUBTAG_PHASES = {
    "disp": PHASE_DISPERSE,
    "rbc": PHASE_RBC,
}


def classify_phase(tag: str, mtype: str, operation_tag: str) -> str:
    """The phase a message belongs to within its operation.

    Sub-protocol substrates are recognised by their registered message
    types (``avid-*``, ``rbc-*``), then by the sub-instance tag
    component; register-tag traffic maps by message type, falling back
    to the message type itself for protocols this table does not know.
    """
    if mtype in _SUBSTRATE_PHASES:
        return _SUBSTRATE_PHASES[mtype]
    if tag != operation_tag and tag.startswith(operation_tag + TAG_SEP):
        component = tag.rsplit(TAG_SEP, 1)[1].partition(".")[0]
        if component in _SUBTAG_PHASES:
            return _SUBTAG_PHASES[component]
    return _MTYPE_PHASES.get(mtype, mtype)


@dataclass
class Span:
    """A named logical-clock interval with traffic totals.

    Operation spans hold their phase spans in ``children`` (ordered by
    open time); ``annotations`` carries span-kind-specific detail (see
    :func:`build_spans`).
    """

    name: str
    kind: str
    tag: str
    open_time: int
    close_time: int
    party: Optional[PartyId] = None
    messages: int = 0
    message_bytes: int = 0
    annotations: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def duration(self) -> int:
        """Logical-clock ticks from open to close."""
        return self.close_time - self.open_time

    def child(self, name: str) -> Optional["Span"]:
        """The first child span with this name, if any."""
        for candidate in self.children:
            if candidate.name == name:
                return candidate
        return None


def operation_records(recorder: TraceRecorder, tag: str,
                      oid: str) -> List[MessageRecord]:
    """All message records belonging to one operation: register-tag
    messages carrying its oid plus all sub-instance traffic
    (``ID|<kind>.oid``).  Public because plane attribution
    (:mod:`repro.obs.planes`) folds the same record set by wire plane.
    """
    prefix = tag + TAG_SEP
    records = []
    for record in recorder.messages.values():
        if record.tag == tag:
            if record.oid == oid:
                records.append(record)
        elif record.tag.startswith(prefix):
            sub_oid = record.tag.rsplit(TAG_SEP, 1)[1].partition(".")[2]
            if sub_oid == oid:
                records.append(record)
    return records


# internal alias retained for the span builder below
_operation_records = operation_records


def _close_time(record: MessageRecord) -> int:
    return record.deliver_time if record.deliver_time is not None \
        else record.send_time


def _phase_spans(records: List[MessageRecord], tag: str) -> List[Span]:
    by_phase: Dict[str, List[MessageRecord]] = {}
    for record in records:
        phase = classify_phase(record.tag, record.mtype, tag)
        by_phase.setdefault(phase, []).append(record)
    spans = []
    for phase, members in by_phase.items():
        mtypes: Dict[str, int] = {}
        for record in members:
            mtypes[record.mtype] = mtypes.get(record.mtype, 0) + 1
        spans.append(Span(
            name=phase, kind=KIND_PHASE, tag=tag,
            open_time=min(r.send_time for r in members),
            close_time=max(_close_time(r) for r in members),
            messages=len(members),
            message_bytes=sum(r.wire_bytes for r in members),
            annotations={"mtypes": mtypes}))
    spans.sort(key=lambda span: (span.open_time, span.name))
    return spans


def _quorum_annotations(recorder: TraceRecorder, tag: str, oid: str,
                        client: PartyId, open_time: int,
                        close_time: int) -> List[Dict[str, Any]]:
    """Quorum releases belonging to one operation.

    A release is bound through the arrival that tipped it (its record
    carries the operation identifier); releases that never waited
    (``releasing_msg_id is None``) are bound by tag, party, and time
    window instead.
    """
    entries = []
    for release in recorder.quorum_releases:
        if release.releasing_msg_id is not None:
            record = recorder.messages.get(release.releasing_msg_id)
            if record is None:
                continue
            bound = _record_belongs(record, tag, oid)
        else:
            bound = (release.tag == tag and release.party == client
                     and open_time <= release.time <= close_time)
        if bound:
            entries.append({
                "party": str(release.party),
                "tag": release.tag,
                "mtype": release.mtype,
                "threshold": release.threshold,
                "time": release.time,
                "released_by": release.releasing_msg_id,
            })
    return entries


def _record_belongs(record: MessageRecord, tag: str, oid: str) -> bool:
    if record.tag == tag:
        return record.oid == oid
    if record.tag.startswith(tag + TAG_SEP):
        return record.tag.rsplit(TAG_SEP, 1)[1].partition(".")[2] == oid
    return False


def _accepted_by(events: List[LocalEvent], tag: str,
                 oid: str) -> List[str]:
    return [str(event.party) for event in events
            if event.kind == EVENT_OUTPUT
            and event.action == "write-accepted"
            and event.tag == tag
            and event.payload and event.payload[0] == oid]


def build_spans(recorder: TraceRecorder) -> List[Span]:
    """Fold a recorded run into operation spans with nested phases.

    Returns one span per *completed* operation, ordered by completion;
    operations still open at the end of the run are summarised in the
    ``open_operations`` annotation of no span (query
    :func:`repro.analysis.trace.match_operations` directly for those).
    """
    pairs, _, _ = match_operations(recorder.events)
    spans = []
    for start, end in pairs:
        oid = start.payload[0] if start.payload else ""
        records = _operation_records(recorder, start.tag, oid)
        children = _phase_spans(records, start.tag)
        tail = max((span.close_time for span in children),
                   default=end.time) - end.time
        completion_record = recorder.messages.get(end.cause_id) \
            if end.cause_id is not None else None
        span = Span(
            name=f"{start.action} {oid}",
            kind=KIND_OPERATION,
            tag=start.tag,
            open_time=start.time,
            close_time=end.time,
            party=start.party,
            messages=sum(child.messages for child in children),
            message_bytes=sum(child.message_bytes
                              for child in children),
            annotations={
                "oid": oid,
                "op": start.action,
                "client": str(start.party),
                "completion_cause": end.cause_id,
                "latency_rounds": completion_record.depth
                if completion_record is not None else None,
                "quorum_releases": _quorum_annotations(
                    recorder, start.tag, oid, start.party, start.time,
                    end.time),
                "accepted_by": _accepted_by(recorder.events, start.tag,
                                            oid),
                "tail_time": max(tail, 0),
            },
            children=children)
        spans.append(span)
    return spans
