"""Declarative SLOs with multi-window burn-rate evaluation.

An :class:`SloSpec` states an objective over the operation stream —
"99% of reads complete within 40 ticks", "99.9% of writes complete at
all" — scoped by op type and (optionally) shard.  The evaluator
bucketizes every matched operation as *good* or *bad* on the windowed
time-series grid and computes **burn rates**: the ratio of the observed
bad fraction to the error budget ``1 - objective``.  A burn rate of 1
means the budget is being consumed exactly as fast as the objective
allows; 10 means ten times too fast.

Alerting follows the multi-window pattern: an alert fires only when
*both* a short window (fast burn, catches sharp regressions quickly)
and a long window (sustained burn, suppresses blips) exceed the spec's
burn threshold.  Everything is computed on the logical clock from the
bucketed good/bad counters, so two runs of the same seed produce
identical alerts.

Operations are anchored to the bucket of their **completion** tick (an
op straddling a bucket edge counts exactly once, in the bucket where
its latency became known); an operation that never completes is a bad
observation anchored to its invocation bucket.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import SimulationError

KIND_LATENCY = "latency"
KIND_AVAILABILITY = "availability"
KIND_REPLICATION = "replication"

OP_ANY = "any"


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective over the operation stream.

    ``kind`` is ``latency`` (good = completed within
    ``threshold_ticks``), ``availability`` (good = completed at all;
    ``threshold_ticks`` is ignored), or ``replication`` (good =
    replication *skew* — how far the last fleet member lagged the
    quorum median in receiving the operation's traffic — stayed within
    ``threshold_ticks``; the durability-margin objective a starved
    server breaches long before completions suffer).  ``op`` filters
    by operation kind
    (``write``/``read``/``any``), ``shard`` by kv shard index (``None``
    matches all operations, sharded or not).  Windows are in buckets of
    the evaluating store's geometry.
    """

    name: str
    op: str = OP_ANY
    kind: str = KIND_LATENCY
    objective: float = 0.99
    threshold_ticks: int = 40
    fast_window: int = 4
    slow_window: int = 16
    burn_threshold: float = 2.0
    shard: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in (KIND_LATENCY, KIND_AVAILABILITY,
                             KIND_REPLICATION):
            raise SimulationError(f"unknown SLO kind {self.kind!r}")
        if not 0 < self.objective < 1:
            raise SimulationError(
                f"SLO objective must be in (0, 1), got {self.objective}")
        if self.fast_window <= 0 or self.slow_window <= 0:
            raise SimulationError("SLO windows must be positive")
        if self.fast_window > self.slow_window:
            raise SimulationError(
                "fast_window must not exceed slow_window")

    @property
    def budget(self) -> float:
        """The error budget ``1 - objective``."""
        return 1.0 - self.objective

    def matches(self, op_kind: str, shard: Optional[int]) -> bool:
        """Whether an operation of ``op_kind`` on ``shard`` is in
        scope for this objective."""
        if self.op != OP_ANY and op_kind != self.op:
            return False
        if self.shard is not None and shard != self.shard:
            return False
        return True

    def is_good(self, completed: bool, latency: Optional[int]) -> bool:
        """Classify one operation outcome against the objective.

        For ``replication`` specs ``latency`` carries the op's
        replication skew and ``completed`` is ignored — traffic
        propagation is judged even for abandoned operations.
        """
        if self.kind == KIND_REPLICATION:
            return latency is not None \
                and latency <= self.threshold_ticks
        if not completed:
            return False
        if self.kind == KIND_AVAILABILITY:
            return True
        return latency is not None and latency <= self.threshold_ticks

    def describe(self) -> str:
        """A one-line human rendering of the objective."""
        scope = self.op if self.op != OP_ANY else "all ops"
        if self.shard is not None:
            scope += f" shard {self.shard}"
        pct = f"{self.objective * 100:g}%"
        if self.kind == KIND_AVAILABILITY:
            return f"{self.name}: {pct} of {scope} complete"
        if self.kind == KIND_REPLICATION:
            return (f"{self.name}: {pct} of {scope} reach the whole "
                    f"fleet within {self.threshold_ticks} ticks of "
                    f"the quorum")
        return (f"{self.name}: {pct} of {scope} complete "
                f"within {self.threshold_ticks} ticks")


def default_slos() -> List[SloSpec]:
    """The stock objective set the monitor CLI evaluates when no custom
    specs are supplied.

    Thresholds are in *global logical ticks* (every delivery fleet-wide
    advances the clock), calibrated against the stock fault-free
    register workload: latency bounds sit well above its worst observed
    percentiles, the availability floor is strict (any abandoned op
    burns it), and the replication-skew bound catches a starved server
    whose deliveries drain long after quorums formed — the signal that
    fires under the ``slow-server`` plan while completions still look
    healthy.
    """
    return [
        SloSpec(name="read-latency", op="read", kind=KIND_LATENCY,
                objective=0.90, threshold_ticks=600),
        SloSpec(name="write-latency", op="write", kind=KIND_LATENCY,
                objective=0.90, threshold_ticks=900),
        SloSpec(name="availability", op=OP_ANY, kind=KIND_AVAILABILITY,
                objective=0.999),
        # burn 4 rather than the stock 2: a genuinely starved server
        # drags nearly every op past the skew bound (burn ~10), while
        # scheduler noise on a healthy fleet tops out around 2.5.
        SloSpec(name="replication-skew", op=OP_ANY,
                kind=KIND_REPLICATION, objective=0.90,
                threshold_ticks=250, burn_threshold=4.0),
    ]


class SloTracker:
    """Accumulates good/bad observations for one spec on the bucket
    grid and answers burn-rate queries."""

    __slots__ = ("spec", "good", "bad", "_buckets")

    def __init__(self, spec: SloSpec):
        self.spec = spec
        self.good = 0
        self.bad = 0
        # bucket_index -> [good, bad]; sparse, appended in time order
        self._buckets: Dict[int, List[int]] = {}

    def observe(self, bucket: int, good: bool) -> None:
        """Record one classified operation anchored to ``bucket``."""
        cell = self._buckets.get(bucket)
        if cell is None:
            cell = [0, 0]
            self._buckets[bucket] = cell
        if good:
            cell[0] += 1
            self.good += 1
        else:
            cell[1] += 1
            self.bad += 1

    @property
    def total(self) -> int:
        return self.good + self.bad

    def window_counts(self, end_bucket: int,
                      width: int) -> Tuple[int, int]:
        """``(good, bad)`` over buckets ``(end_bucket - width,
        end_bucket]``."""
        low = end_bucket - width
        good = bad = 0
        for index, (g, b) in self._buckets.items():
            if low < index <= end_bucket:
                good += g
                bad += b
        return good, bad

    def burn_rate(self, end_bucket: int, width: int) -> float:
        """Observed bad fraction over the window divided by the error
        budget; 0 when the window saw no operations."""
        good, bad = self.window_counts(end_bucket, width)
        total = good + bad
        if not total:
            return 0.0
        return (bad / total) / self.spec.budget

    def alert_at(self, bucket: int) -> bool:
        """Whether the multi-window alert condition holds at
        ``bucket``: both windows saw traffic and both burn past the
        threshold."""
        spec = self.spec
        fast_total = sum(self.window_counts(bucket, spec.fast_window))
        slow_total = sum(self.window_counts(bucket, spec.slow_window))
        return (fast_total > 0 and slow_total > 0
                and self.burn_rate(bucket, spec.fast_window)
                >= spec.burn_threshold
                and self.burn_rate(bucket, spec.slow_window)
                >= spec.burn_threshold)

    def fired_buckets(self, end_bucket: int) -> List[int]:
        """Every bucket up to ``end_bucket`` at which the alert
        condition held — a streaming evaluator polling each bucket
        would have paged at exactly these points."""
        if not self._buckets:
            return []
        start = min(self._buckets)
        return [bucket for bucket in range(start, end_bucket + 1)
                if self.alert_at(bucket)]

    def evaluate(self, end_bucket: int) -> Dict[str, Any]:
        """The spec's full state over a run ending at ``end_bucket``:
        overall compliance, the end-of-run window burn rates, and the
        alert history (``alert`` is true if the multi-window condition
        held at *any* bucket — a post-hoc report must not lose a page
        that a live evaluator would have raised mid-run)."""
        spec = self.spec
        fast = self.burn_rate(end_bucket, spec.fast_window)
        slow = self.burn_rate(end_bucket, spec.slow_window)
        fired = self.fired_buckets(end_bucket)
        compliance = (self.good / self.total) if self.total else 1.0
        return {
            "name": spec.name,
            "objective": spec.objective,
            "description": spec.describe(),
            "good": self.good,
            "bad": self.bad,
            "compliance": compliance,
            "fast_burn": fast,
            "slow_burn": slow,
            "burn_threshold": spec.burn_threshold,
            "alert": bool(fired),
            "fired_buckets": fired,
        }


def evaluate_slos(trackers: Sequence[SloTracker],
                  end_bucket: int) -> List[Dict[str, Any]]:
    """Evaluate every tracker at ``end_bucket``, in spec order."""
    return [tracker.evaluate(end_bucket) for tracker in trackers]
