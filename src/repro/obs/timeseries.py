"""Windowed time-series rollups over the logical clock.

The instrument registry keeps whole-run aggregates; SLO evaluation and
health dashboards need the *shape over time* instead: how many reads
completed in ticks 96..127, what the p99 write latency looked like over
the last eight buckets, when the in-flight gauge spiked.  This module
provides that layer: named series whose observations are rolled up into
fixed-width **tick buckets** (``bucket_index = time // bucket_ticks``),
ring-buffered so memory stays bounded no matter how long a campaign
runs.

Three series kinds mirror the instrument kinds:

* **counter** — per-bucket sums (operations completed, messages sent);
* **gauge** — per-bucket last/min/max of a sampled level;
* **digest** — per-bucket :class:`Digest` histogram digests: fixed
  power-of-two bins with exact count/sum/min/max, so per-window
  percentiles are estimated from bounded state instead of retained
  samples.

Everything runs on the logical clock and is deterministic: bucket
boundaries are pure integer arithmetic, snapshots iterate names in
sorted order, and two runs of the same seed produce byte-identical
rollups.  An observation that *straddles* a bucket edge (an operation
invoked in bucket 3 completing in bucket 4) is counted exactly once, in
the bucket of the time passed to :meth:`Series.record` — callers choose
the anchoring convention (completion time for latency samples).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import SimulationError

KIND_COUNTER = "counter"
KIND_GAUGE = "gauge"
KIND_DIGEST = "digest"

_KINDS = (KIND_COUNTER, KIND_GAUGE, KIND_DIGEST)


class Digest:
    """Bounded-memory histogram digest with power-of-two bins.

    Bin ``i`` holds values whose integer part has bit length ``i``
    (``0``, ``1``, ``2..3``, ``4..7``, ...), so relative error of a
    percentile estimate is at most 2x — plenty for tick-latency SLOs —
    while memory stays a fixed ``_BINS`` counters regardless of sample
    count.  Exact count/sum/min/max ride alongside the bins.
    """

    __slots__ = ("bins", "count", "total", "min_value", "max_value")

    #: bins cover integer values up to ``2**(_BINS - 1) - 1``
    _BINS = 40

    def __init__(self) -> None:
        self.bins: List[int] = [0] * self._BINS
        self.count = 0
        self.total = 0.0
        self.min_value: Optional[float] = None
        self.max_value: Optional[float] = None

    def record(self, value: float) -> None:
        """Add one observation (non-negative; latencies and sizes)."""
        if value < 0:
            raise SimulationError(
                f"digest observations must be non-negative, got {value}")
        self.count += 1
        self.total += value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value
        index = int(value).bit_length()
        if index >= self._BINS:
            index = self._BINS - 1
        self.bins[index] += 1

    def merge(self, other: "Digest") -> None:
        """Fold ``other``'s observations into this digest (for window
        queries over several buckets)."""
        for index, amount in enumerate(other.bins):
            self.bins[index] += amount
        self.count += other.count
        self.total += other.total
        if other.min_value is not None and (
                self.min_value is None
                or other.min_value < self.min_value):
            self.min_value = other.min_value
        if other.max_value is not None and (
                self.max_value is None
                or other.max_value > self.max_value):
            self.max_value = other.max_value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank ``q``-th percentile estimate (bin upper bound,
        clamped to the exact extremes); 0 for an empty digest."""
        if not 0 <= q <= 100:
            raise SimulationError(f"percentile {q} out of range")
        if not self.count:
            return 0.0
        rank = max(1, -(-int(q * self.count) // 100))  # ceil, 1-based
        seen = 0
        for index, amount in enumerate(self.bins):
            seen += amount
            if seen >= rank:
                upper = 0 if index == 0 else (1 << index) - 1
                estimate = float(upper)
                break
        else:  # pragma: no cover - bins always sum to count
            estimate = float(self.max_value or 0)
        if self.max_value is not None:
            estimate = min(estimate, self.max_value)
        if self.min_value is not None:
            estimate = max(estimate, self.min_value)
        return estimate

    def summary(self) -> Dict[str, Any]:
        """Count/sum/mean/extremes/p50/p99 as plain JSON values."""
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min_value,
            "max": self.max_value,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
        }


class Series:
    """One named time-series: bucketed rollups of one observation kind.

    Buckets are opened lazily in time order (the logical clock never
    runs backward) and kept sparse — a bucket with no observations
    occupies no memory.  When more than ``max_buckets`` are live the
    oldest is evicted and counted in ``dropped_buckets``, bounding
    memory for arbitrarily long runs.
    """

    __slots__ = ("name", "kind", "bucket_ticks", "max_buckets",
                 "dropped_buckets", "_indices", "_payloads")

    def __init__(self, name: str, kind: str, bucket_ticks: int,
                 max_buckets: int):
        if kind not in _KINDS:
            raise SimulationError(f"unknown series kind {kind!r}")
        if bucket_ticks <= 0:
            raise SimulationError("bucket_ticks must be positive")
        if max_buckets <= 0:
            raise SimulationError("max_buckets must be positive")
        self.name = name
        self.kind = kind
        self.bucket_ticks = bucket_ticks
        self.max_buckets = max_buckets
        self.dropped_buckets = 0
        self._indices: List[int] = []
        self._payloads: List[Any] = []

    def bucket_of(self, time: int) -> int:
        """The bucket index a logical time falls into."""
        return time // self.bucket_ticks

    def _payload_at(self, time: int) -> Any:
        index = self.bucket_of(time)
        if self._indices and index < self._indices[-1]:
            raise SimulationError(
                f"series {self.name!r}: time {time} is before the "
                f"open bucket (the logical clock never runs backward)")
        if not self._indices or index > self._indices[-1]:
            if self.kind == KIND_COUNTER:
                payload: Any = 0
            elif self.kind == KIND_GAUGE:
                payload = [None, None, None, 0]  # last, min, max, samples
            else:
                payload = Digest()
            self._indices.append(index)
            self._payloads.append(payload)
            if len(self._indices) > self.max_buckets:
                del self._indices[0]
                del self._payloads[0]
                self.dropped_buckets += 1
        return self._payloads[-1]

    def record(self, time: int, value: float = 1) -> None:
        """Roll one observation into the bucket of ``time``.

        Counters add ``value`` (default 1), gauges sample the level,
        digests record the observation.
        """
        payload = self._payload_at(time)
        if self.kind == KIND_COUNTER:
            self._payloads[-1] = payload + value
        elif self.kind == KIND_GAUGE:
            payload[0] = value
            payload[1] = value if payload[1] is None \
                else min(payload[1], value)
            payload[2] = value if payload[2] is None \
                else max(payload[2], value)
            payload[3] += 1
        else:
            payload.record(value)

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._indices)

    @property
    def first_bucket(self) -> Optional[int]:
        return self._indices[0] if self._indices else None

    @property
    def last_bucket(self) -> Optional[int]:
        return self._indices[-1] if self._indices else None

    def buckets(self) -> List[Tuple[int, Any]]:
        """Live ``(bucket_index, payload summary)`` pairs, oldest first.

        Counter payloads are sums; gauge payloads ``{last, min, max,
        samples}``; digest payloads :meth:`Digest.summary` dictionaries.
        """
        return [(index, self._summarize(payload))
                for index, payload in zip(self._indices, self._payloads)]

    def values(self) -> List[Tuple[int, float]]:
        """A plottable ``(bucket_index, scalar)`` view: counter sums,
        gauge last-values, digest means."""
        out = []
        for index, payload in zip(self._indices, self._payloads):
            if self.kind == KIND_COUNTER:
                out.append((index, float(payload)))
            elif self.kind == KIND_GAUGE:
                out.append((index, float(payload[0] or 0)))
            else:
                out.append((index, payload.mean))
        return out

    def total(self) -> float:
        """Sum over live buckets (counter sums / gauge samples / digest
        counts) — the retained-window total."""
        if self.kind == KIND_COUNTER:
            return float(sum(self._payloads))
        if self.kind == KIND_GAUGE:
            return float(sum(payload[3] for payload in self._payloads))
        return float(sum(payload.count for payload in self._payloads))

    def window(self, end_bucket: int, width: int) -> Dict[str, Any]:
        """Merged rollup over buckets ``(end_bucket - width,
        end_bucket]`` — the sliding-window query SLO burn rates use."""
        if width <= 0:
            raise SimulationError("window width must be positive")
        low = end_bucket - width
        chosen = [payload for index, payload
                  in zip(self._indices, self._payloads)
                  if low < index <= end_bucket]
        if self.kind == KIND_COUNTER:
            return {"kind": self.kind, "sum": sum(chosen),
                    "buckets": len(chosen)}
        if self.kind == KIND_GAUGE:
            mins = [p[1] for p in chosen if p[1] is not None]
            maxes = [p[2] for p in chosen if p[2] is not None]
            return {"kind": self.kind,
                    "last": chosen[-1][0] if chosen else None,
                    "min": min(mins) if mins else None,
                    "max": max(maxes) if maxes else None,
                    "samples": sum(p[3] for p in chosen),
                    "buckets": len(chosen)}
        merged = Digest()
        for payload in chosen:
            merged.merge(payload)
        result = merged.summary()
        result["kind"] = self.kind
        result["buckets"] = len(chosen)
        return result

    def _summarize(self, payload: Any) -> Any:
        if self.kind == KIND_COUNTER:
            return payload
        if self.kind == KIND_GAUGE:
            return {"last": payload[0], "min": payload[1],
                    "max": payload[2], "samples": payload[3]}
        return payload.summary()

    def summary(self) -> Dict[str, Any]:
        """The series as a plain JSON-exportable dictionary."""
        return {
            "kind": self.kind,
            "bucket_ticks": self.bucket_ticks,
            "dropped_buckets": self.dropped_buckets,
            "buckets": [[index, value]
                        for index, value in self.buckets()],
        }


class TimeSeriesStore:
    """Create-or-get store of named series sharing one bucket geometry.

    Mirrors :class:`repro.obs.instruments.Registry`: a name is bound to
    one series kind for the store's lifetime, and snapshots iterate in
    sorted name order.  ``observe_time`` advances the store's horizon —
    the tick-bucket flush hook the simulator drives — so consumers know
    the current bucket even when no observation landed in it.
    """

    def __init__(self, bucket_ticks: int = 32, max_buckets: int = 256):
        if bucket_ticks <= 0:
            raise SimulationError("bucket_ticks must be positive")
        self.bucket_ticks = bucket_ticks
        self.max_buckets = max_buckets
        self.horizon = 0
        self._series: Dict[str, Series] = {}

    def _get(self, name: str, kind: str) -> Series:
        series = self._series.get(name)
        if series is None:
            series = Series(name, kind, self.bucket_ticks,
                            self.max_buckets)
            self._series[name] = series
        elif series.kind != kind:
            raise SimulationError(
                f"series {name!r} already registered as {series.kind}")
        return series

    def counter(self, name: str) -> Series:
        """The counter series under ``name`` (created on first use)."""
        return self._get(name, KIND_COUNTER)

    def gauge(self, name: str) -> Series:
        """The gauge series under ``name`` (created on first use)."""
        return self._get(name, KIND_GAUGE)

    def digest(self, name: str) -> Series:
        """The digest series under ``name`` (created on first use)."""
        return self._get(name, KIND_DIGEST)

    def observe_time(self, time: int) -> None:
        """Advance the horizon (called on every simulator tick)."""
        if time > self.horizon:
            self.horizon = time

    @property
    def horizon_bucket(self) -> int:
        """The bucket the horizon currently falls into."""
        return self.horizon // self.bucket_ticks

    def __len__(self) -> int:
        return len(self._series)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def get(self, name: str) -> Optional[Series]:
        """The series under ``name``, or ``None``."""
        return self._series.get(name)

    def names(self) -> List[str]:
        """All series names, sorted (deterministic)."""
        return sorted(self._series)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All series as plain ``{name: summary}`` dictionaries in
        sorted name order — the JSON-exportable view."""
        return {name: self._series[name].summary()
                for name in self.names()}
