"""Metadata-plane vs data-plane traffic attribution.

The metadata/data separation (Protocol AtomicMd, following MDStore and
PoWerStore) is a claim about *which bytes move*: timestamps and
cross-checksums are tiny and may cross full quorums, while erasure-coded
blocks are bulky and should touch as few servers as possible.  This
module classifies every wire message into one of the two planes so the
bench harness, the health monitor, and ``repro monitor`` can report the
split per run and per operation — for every protocol, not just AtomicMd
(Protocol Atomic's AVID echo storm is exactly the data-plane cost the
separation removes).

Classification is by message type: the block-carrying types of each
substrate are the data plane, every other protocol message (timestamp
queries, metadata replies, acks, reliable-broadcast gossip of ``(ts,
D)`` pairs) is metadata.  Transport envelopes (``kv-batch``) are
excluded entirely — their inner messages are traced individually, so
counting the envelope too would double-book every byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet

from repro.analysis.trace import match_operations
from repro.avid.disperse import MESSAGE_TYPES as _AVID_TYPES
from repro.core.atomic_md import DATA_PLANE_TYPES as _MD_DATA_TYPES
from repro.obs.recorder import MessageRecord, TraceRecorder
from repro.obs.spans import operation_records

PLANE_METADATA = "metadata"
PLANE_DATA = "data"

#: Block-carrying message types across all protocols: the AVID dispersal
#: substrate (send/echo/ready/retrieve all move blocks), AtomicMd's
#: point-to-point store and on-demand block serving, the classic read
#: reply ``value`` (commitment + block + witness), and the unauthenticated
#: baselines' ``store`` writes.
DATA_PLANE_MTYPES: FrozenSet[str] = frozenset(
    (*_AVID_TYPES, *_MD_DATA_TYPES, "value", "store"))

#: Transport envelopes whose inner messages are traced individually;
#: excluded from plane accounting to avoid double-booking.  The literal
#: mirrors :data:`repro.kv.envelope.MSG_KV_BATCH` — importing it here
#: would cycle ``obs -> kv -> obs``; a test pins the two in sync.
TRANSPORT_MTYPES: FrozenSet[str] = frozenset(("kv-batch",))


def plane_of_mtype(mtype: str) -> str:
    """The plane a message type belongs to (``"data"`` for
    block-carrying types, ``"metadata"`` otherwise); transport envelopes
    still classify as metadata — filter them with
    :data:`TRANSPORT_MTYPES` when accounting."""
    return PLANE_DATA if mtype in DATA_PLANE_MTYPES else PLANE_METADATA


@dataclass
class PlaneTraffic:
    """Message and byte totals split by plane."""

    metadata_messages: int = 0
    metadata_bytes: int = 0
    data_messages: int = 0
    data_bytes: int = 0

    def add(self, record: MessageRecord) -> None:
        """Fold one traced message into the totals (envelopes skipped)."""
        self.observe(record.mtype, record.wire_bytes)

    def observe(self, mtype: str, wire_bytes: int) -> None:
        """Fold one wire message into the totals (envelopes skipped)."""
        if mtype in TRANSPORT_MTYPES:
            return
        if mtype in DATA_PLANE_MTYPES:
            self.data_messages += 1
            self.data_bytes += wire_bytes
        else:
            self.metadata_messages += 1
            self.metadata_bytes += wire_bytes

    @property
    def total_bytes(self) -> int:
        """All protocol bytes, both planes."""
        return self.metadata_bytes + self.data_bytes

    def to_json(self) -> Dict[str, int]:
        """The totals as a plain JSON-serializable dictionary."""
        return {
            "metadata_messages": self.metadata_messages,
            "metadata_bytes": self.metadata_bytes,
            "data_messages": self.data_messages,
            "data_bytes": self.data_bytes,
        }


def plane_traffic(recorder: TraceRecorder) -> PlaneTraffic:
    """Whole-run plane totals over every traced message."""
    totals = PlaneTraffic()
    for record in recorder.messages.values():
        totals.add(record)
    return totals


def operation_plane_traffic(
        recorder: TraceRecorder) -> Dict[str, PlaneTraffic]:
    """Per-operation-kind plane totals (``{"write": ..., "read": ...}``).

    Each *completed* operation's traffic — register-tag messages
    carrying its oid plus all sub-instance traffic — is attributed to
    the operation's kind, so a read-mostly workload shows directly how
    many data-plane bytes its reads move.
    """
    totals: Dict[str, PlaneTraffic] = {"write": PlaneTraffic(),
                                       "read": PlaneTraffic()}
    pairs, _, _ = match_operations(recorder.events)
    for start, _end in pairs:
        oid = start.payload[0] if start.payload else ""
        bucket = totals.setdefault(start.action, PlaneTraffic())
        for record in operation_records(recorder, start.tag, oid):
            bucket.add(record)
    return totals
