"""Trace recorder: the causal record of one simulation run.

A :class:`TraceRecorder` attaches to a
:class:`~repro.net.simulator.Simulator` and captures, as the run
executes:

* a :class:`MessageRecord` per sent message — send/deliver logical
  times, wire size, causal depth, and the ``cause_id`` happens-before
  link to the delivery that activated the sender;
* every input/output action (:class:`~repro.net.message.LocalEvent`);
* every :class:`QuorumRelease` — the exact arrival that tipped a
  ``condition_quorum`` wait state over its threshold;
* built-in instruments (:mod:`repro.obs.instruments`): in-flight
  message gauge, per-party inbox depth, per-message-type wire-size
  histograms, rounds-per-quorum.

The cause links form a DAG over the whole run (message → message that
activated its sender); :mod:`repro.obs.critical_path` walks it backward
from an operation's completing output action to explain the operation's
latency, and :mod:`repro.obs.spans` folds the records into operation /
sub-protocol spans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.common.ids import PartyId
from repro.net.message import LocalEvent, Message
from repro.obs.instruments import Registry


@dataclass
class MessageRecord:
    """The traced lifecycle of one message.

    ``oid`` is the operation identifier carried as the first payload
    element when it is a string (the register protocols' convention),
    letting spans bind register-tag traffic to individual operations.
    ``deliver_time`` stays ``None`` for messages still in flight at the
    end of the run.
    """

    msg_id: int
    tag: str
    mtype: str
    sender: PartyId
    recipient: PartyId
    send_time: int
    wire_bytes: int
    depth: int
    cause_id: Optional[int]
    oid: Optional[str]
    deliver_time: Optional[int] = None

    @property
    def queue_wait(self) -> Optional[int]:
        """Logical ticks between send and delivery (``None`` if the
        message was never delivered)."""
        if self.deliver_time is None:
            return None
        return self.deliver_time - self.send_time


@dataclass(frozen=True)
class QuorumRelease:
    """A ``condition_quorum`` wait state crossing its threshold.

    ``releasing_msg_id`` is the arrival being processed when the
    condition first held — the ``(n - t)``-th message the wait was
    blocked on (``None`` when the quorum was already satisfied at
    registration, i.e. the thread never actually waited).
    """

    time: int
    party: PartyId
    tag: str
    mtype: str
    threshold: int
    quorum_msg_ids: Tuple[int, ...]
    releasing_msg_id: Optional[int]


class TraceRecorder:
    """Causal trace of one run; attach with :meth:`attach` before the
    first delivery.

    All captured state is public: ``messages`` (by ``msg_id``, in send
    order), ``events``, ``quorum_releases``, and the instrument
    ``registry``.
    """

    def __init__(self, registry: Optional[Registry] = None):
        self.messages: Dict[int, MessageRecord] = {}
        self.events: List[LocalEvent] = []
        self.quorum_releases: List[QuorumRelease] = []
        self.registry = registry or Registry()

    def attach(self, simulator) -> "TraceRecorder":
        """Attach to a simulator (see
        :meth:`~repro.net.simulator.Simulator.attach_tracer`); returns
        ``self`` for chaining."""
        simulator.attach_tracer(self)
        return self

    # -- simulator callbacks ------------------------------------------------

    def on_send(self, message: Message, time: int,
                pending: int = 0) -> None:
        """Record a message joining the in-flight bag."""
        oid = message.payload[0] if (
            message.payload and isinstance(message.payload[0], str)) \
            else None
        self.messages[message.msg_id] = MessageRecord(
            msg_id=message.msg_id, tag=message.tag, mtype=message.mtype,
            sender=message.sender, recipient=message.recipient,
            send_time=time, wire_bytes=message.wire_size(),
            depth=message.depth, cause_id=message.cause_id, oid=oid)
        registry = self.registry
        registry.counter("net.sent").inc()
        registry.histogram(f"wire.bytes[{message.mtype}]").record(
            self.messages[message.msg_id].wire_bytes)
        registry.gauge("net.in_flight").set(pending)

    def on_deliver(self, message: Message, time: int,
                   inbox_depth: int = 0, pending: int = 0) -> None:
        """Record a delivery (the logical-clock tick it occupies)."""
        record = self.messages.get(message.msg_id)
        if record is not None:
            record.deliver_time = time
        registry = self.registry
        registry.counter("net.delivered").inc()
        registry.gauge(f"inbox.depth[{message.recipient}]").set(
            inbox_depth + 1)
        registry.gauge("net.in_flight").set(pending)

    def on_input(self, event: LocalEvent) -> None:
        """Record an input action."""
        self.events.append(event)
        self.registry.counter("events.input").inc()

    def on_output(self, event: LocalEvent) -> None:
        """Record an output action."""
        self.events.append(event)
        self.registry.counter("events.output").inc()

    def on_verify_fail(self, party: PartyId, suspect: PartyId, tag: str,
                       mtype: str) -> None:
        """Record a failed cryptographic check on traffic from
        ``suspect`` observed at ``party`` (see
        :meth:`repro.net.process.Process.note_verification_failure`)."""
        self.registry.counter(f"verify.failed[{suspect}]").inc()
        self.registry.counter(f"verify.failed.by[{mtype}]").inc()

    def on_quorum(self, time: int, party: PartyId, tag: str, mtype: str,
                  threshold: int, quorum_msg_ids: Tuple[int, ...],
                  releasing_msg_id: Optional[int]) -> None:
        """Record a quorum condition crossing its threshold."""
        self.quorum_releases.append(QuorumRelease(
            time=time, party=party, tag=tag, mtype=mtype,
            threshold=threshold, quorum_msg_ids=quorum_msg_ids,
            releasing_msg_id=releasing_msg_id))
        self.registry.counter("quorum.released").inc()
        if releasing_msg_id is not None:
            record = self.messages.get(releasing_msg_id)
            if record is not None:
                self.registry.histogram(
                    f"quorum.rounds[{mtype}]").record(record.depth)

    # -- queries -------------------------------------------------------------

    def record(self, msg_id: int) -> MessageRecord:
        """The record of one message."""
        try:
            return self.messages[msg_id]
        except KeyError:
            raise SimulationError(
                f"no trace record for message {msg_id}") from None

    def causal_chain(self, msg_id: Optional[int]) -> List[MessageRecord]:
        """The happens-before chain ending at ``msg_id``, root first.

        Follows ``cause_id`` links backward to a spontaneous send (a
        client invocation); the result is the message path that made the
        final delivery happen.
        """
        chain: List[MessageRecord] = []
        current = msg_id
        while current is not None:
            record = self.messages.get(current)
            if record is None or len(chain) > len(self.messages):
                break
            chain.append(record)
            current = record.cause_id
        chain.reverse()
        return chain

    def records_under(self, tag_prefix: str) -> List[MessageRecord]:
        """All records whose tag is ``tag_prefix`` or a sub-instance of
        it, in send order."""
        from repro.common.ids import TAG_SEP
        prefix = tag_prefix + TAG_SEP
        return [record for record in self.messages.values()
                if record.tag == tag_prefix
                or record.tag.startswith(prefix)]
