"""Wall-clock quarantine for the observability plane.

Protocol modules run under the simulator's *logical* clock and must stay
free of real-time reads — the determinism lint (:mod:`repro.lint`)
enforces this over every protocol package, :mod:`repro.obs` included.
Benchmark harnesses still need wall-clock timers (e.g. to report how
long a sweep took on real hardware), so every real-time read in the
library lives here, behind explicit waivers, and nowhere else.

Nothing in this module may influence protocol behaviour: timers are
write-only measurement, never control flow.
"""

from __future__ import annotations

import time  # lint: disable=det-wallclock
from typing import Optional

from repro.obs.instruments import Histogram


def wall_seconds() -> float:
    """A monotonic wall-clock reading in seconds (measurement only)."""
    return time.perf_counter()  # lint: disable=det-wallclock


class WallTimer:
    """Context manager measuring the wall-clock span of a block.

    Optionally records the elapsed seconds into a
    :class:`~repro.obs.instruments.Histogram`, so registries can hold
    real-time distributions next to logical-time ones::

        with WallTimer(registry.histogram("bench.seconds")) as timer:
            run_sweep()
        print(timer.elapsed)
    """

    def __init__(self, histogram: Optional[Histogram] = None):
        self._histogram = histogram
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "WallTimer":
        self._start = wall_seconds()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = wall_seconds() - self._start
        if self._histogram is not None:
            self._histogram.record(self.elapsed)
        return None
