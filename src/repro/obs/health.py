"""Per-server health scoring and run-level telemetry aggregation.

The protocols tolerate ``t < n/3`` Byzantine servers, but tolerating a
fault is not the same as *noticing* one: an operator wants to know which
servers are drifting toward the fault budget while reads still succeed.
:class:`HealthMonitor` is the runtime layer that answers this.  It is a
tracer — attach it where a :class:`~repro.obs.recorder.TraceRecorder`
would go — that wraps a recorder (keeping the full causal trace) while
additionally folding every callback into:

* **windowed time-series** (:mod:`repro.obs.timeseries`): bucketed
  throughput/latency/in-flight rollups, per op type and per kv shard;
* **per-server suspicion scores**: a deterministic weighted blend of
  the Byzantine signals one run exposes —

  - *verification failures* (``verify``): well-formed messages whose
    commitment/signature check failed; honest servers never produce
    one, so this saturates quickly;
  - *missed quorum participation* (``quorum``): how often the server
    was absent from released quorums it should have fed;
  - *silence* (``silence``): send deficit relative to the chattiest
    server — a crashed or withholding server goes quiet;
  - *chaos attribution* (``chaos``): injected drops/delays/corruptions
    the fault plan attributed to the server;
  - *re-broadcast anomalies* (``rebroadcast``): per-message-type send
    counts far above the fleet median — duplicate floods;

* **SLO burn rates** (:mod:`repro.obs.slo`): every completed (or
  abandoned) operation classified good/bad against declarative
  latency/availability objectives.

All signals are derived from the logical clock and sorted iteration,
so two runs of the same seed produce identical scores, series, and
alerts.  The monitor is measurement-only: it never writes events, never
ticks the clock, and never feeds back into scheduling — attaching it
preserves golden-schedule digests byte for byte.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.ids import PartyId
from repro.net.message import LocalEvent, Message
from repro.obs.planes import (
    TRANSPORT_MTYPES,
    PlaneTraffic,
    plane_of_mtype,
)
from repro.obs.recorder import TraceRecorder
from repro.obs.slo import (
    KIND_REPLICATION,
    SloSpec,
    SloTracker,
    default_slos,
)
from repro.obs.timeseries import TimeSeriesStore

#: completion output action -> the invocation input action it terminates
#: (mirrors :data:`repro.analysis.trace.COMPLETION_ACTIONS`)
_COMPLETIONS = {"ack": "write", "read": "read"}

#: Default blend of suspicion components.  Verification failures are the
#: strongest signal (cryptographically attributable), silence and missed
#: quorums catch crash-like behaviour, chaos attribution folds in the
#: fault plan's own bookkeeping, re-broadcast anomalies catch floods.
DEFAULT_WEIGHTS: Dict[str, float] = {
    "verify": 0.30,
    "quorum": 0.25,
    "silence": 0.25,
    "chaos": 0.15,
    "rebroadcast": 0.05,
}

#: Re-broadcast excess (sends above fleet median for one message type)
#: at which that component reaches 0.5.
_REBROADCAST_HALFPOINT = 8


def shard_of_tag(tag: str) -> Optional[int]:
    """The kv shard index encoded in a register tag (``kv.s<shard>.*``),
    or ``None`` for non-sharded traffic."""
    if not tag.startswith("kv.s"):
        return None
    head = tag[4:].split(".", 1)[0]
    try:
        return int(head)
    except ValueError:
        return None


class HealthMonitor:
    """Tracer that scores server health and rolls telemetry into
    windowed series; attach with :meth:`attach` before the run.

    Parameters
    ----------
    recorder:
        The :class:`TraceRecorder` to wrap (one is created when
        omitted); its full causal trace stays available as
        ``monitor.recorder`` for span/critical-path analysis.
    bucket_ticks / max_buckets:
        Time-series geometry (see :mod:`repro.obs.timeseries`).
    slos:
        Objectives to evaluate (:func:`repro.obs.slo.default_slos`
        when omitted).
    weights:
        Suspicion component weights (:data:`DEFAULT_WEIGHTS` merged
        with any overrides).
    """

    def __init__(self, recorder: Optional[TraceRecorder] = None,
                 bucket_ticks: int = 32, max_buckets: int = 512,
                 slos: Optional[Sequence[SloSpec]] = None,
                 weights: Optional[Dict[str, float]] = None):
        self.recorder = recorder if recorder is not None \
            else TraceRecorder()
        self.store = TimeSeriesStore(bucket_ticks=bucket_ticks,
                                     max_buckets=max_buckets)
        self.slos = list(slos) if slos is not None else default_slos()
        self.trackers = [SloTracker(spec) for spec in self.slos]
        self.weights = dict(DEFAULT_WEIGHTS)
        if weights:
            self.weights.update(weights)
        self._simulator = None
        #: run totals split metadata-plane vs data-plane (transport
        #: envelopes excluded; see :mod:`repro.obs.planes`)
        self.planes = PlaneTraffic()
        # -- per-server signal accumulators (keyed by PartyId) --------
        self._sends: Dict[PartyId, int] = {}
        self._sends_by_type: Dict[Tuple[PartyId, str], int] = {}
        self._verify_fails: Dict[PartyId, int] = {}
        self._chaos_hits: Dict[PartyId, int] = {}
        self._quorum_present: Dict[PartyId, int] = {}
        self._quorum_missed: Dict[PartyId, int] = {}
        # -- operation lifecycle (LIFO per key, as match_operations) --
        self._open_ops: Dict[Tuple, List[LocalEvent]] = {}
        # oid -> (op kind, tag); feeds replication-skew classification
        self._op_meta: Dict[str, Tuple[str, str]] = {}
        # oid -> {server: first delivery time of the op's traffic}
        self._op_delivery: Dict[str, Dict[PartyId, int]] = {}
        self.ops_completed = 0
        self.ops_abandoned = 0
        self._finalized = False

    # -- attachment ----------------------------------------------------------

    def attach(self, simulator) -> "HealthMonitor":
        """Attach to a simulator (single tracer slot); returns ``self``
        for chaining."""
        simulator.attach_tracer(self)
        self._simulator = simulator
        return self

    @property
    def roster(self) -> List[PartyId]:
        """Server identities under health scoring, in index order."""
        if self._simulator is None:
            return []
        return self._simulator.server_pids

    @property
    def bucket_ticks(self) -> int:
        return self.store.bucket_ticks

    # -- tracer callbacks ----------------------------------------------------

    def on_send(self, message: Message, time: int,
                pending: int = 0) -> None:
        """Count the send per server/mtype, split its bytes by wire
        plane, and sample the in-flight gauge (forwards to the wrapped
        recorder first)."""
        self.recorder.on_send(message, time, pending=pending)
        sender = message.sender
        if sender.is_server:
            self._sends[sender] = self._sends.get(sender, 0) + 1
            key = (sender, message.mtype)
            self._sends_by_type[key] = self._sends_by_type.get(key, 0) + 1
        self.store.counter("net.sent").record(time)
        self.store.gauge("net.in_flight").record(time, pending)
        if message.mtype not in TRANSPORT_MTYPES:
            wire_bytes = message.wire_size()
            self.planes.observe(message.mtype, wire_bytes)
            plane = plane_of_mtype(message.mtype)
            self.store.counter(
                f"plane.bytes[{plane}]").record(time, wire_bytes)

    def on_deliver(self, message: Message, time: int,
                   inbox_depth: int = 0, pending: int = 0) -> None:
        """Roll the delivery into the series and note each server's
        first sight of an operation's traffic (replication skew)."""
        self.recorder.on_deliver(message, time,
                                 inbox_depth=inbox_depth,
                                 pending=pending)
        self.store.counter("net.delivered").record(time)
        self.store.gauge("net.in_flight").record(time, pending)
        if message.recipient.is_server and message.payload \
                and isinstance(message.payload[0], str):
            arrivals = self._op_delivery.get(message.payload[0])
            if arrivals is not None \
                    and message.recipient not in arrivals:
                arrivals[message.recipient] = time

    def on_input(self, event: LocalEvent) -> None:
        """Open an operation: start its lifecycle tracking and count
        the invocation."""
        self.recorder.on_input(event)
        if event.action in ("write", "read"):
            oid = event.payload[0] if event.payload else None
            key = (event.tag, oid, event.party, event.action)
            self._open_ops.setdefault(key, []).append(event)
            if isinstance(oid, str):
                self._op_meta[oid] = (event.action, event.tag)
                self._op_delivery.setdefault(oid, {})
            self.store.counter(
                f"ops.invoked[{event.action}]").record(event.time)

    def on_output(self, event: LocalEvent) -> None:
        """Close the matching invocation (LIFO per key) and classify
        the completed operation against the SLOs."""
        self.recorder.on_output(event)
        kind = _COMPLETIONS.get(event.action)
        if kind is None:
            return
        oid = event.payload[0] if event.payload else None
        stack = self._open_ops.get((event.tag, oid, event.party, kind))
        if not stack:
            return
        invocation = stack.pop()
        self._complete(invocation, event, kind)

    def on_quorum(self, time: int, party: PartyId, tag: str, mtype: str,
                  threshold: int, quorum_msg_ids: Tuple[int, ...],
                  releasing_msg_id: Optional[int]) -> None:
        """Mark each roster server present in or absent from the
        released quorum (the missed-participation signal)."""
        self.recorder.on_quorum(time, party, tag, mtype, threshold,
                                quorum_msg_ids, releasing_msg_id)
        messages = self.recorder.messages
        participants = set()
        for msg_id in quorum_msg_ids:
            record = messages.get(msg_id)
            if record is not None and record.sender.is_server:
                participants.add(record.sender)
        if not participants:
            return  # client-fed quorum: no server signal in it
        for server in self.roster:
            if server in participants:
                self._quorum_present[server] = \
                    self._quorum_present.get(server, 0) + 1
            else:
                self._quorum_missed[server] = \
                    self._quorum_missed.get(server, 0) + 1

    def on_verify_fail(self, party: PartyId, suspect: PartyId, tag: str,
                       mtype: str) -> None:
        """Charge a failed commitment/signature check to the suspect
        — the strongest (cryptographically attributable) signal."""
        self.recorder.on_verify_fail(party, suspect, tag, mtype)
        self._verify_fails[suspect] = \
            self._verify_fails.get(suspect, 0) + 1
        time = self._simulator.time if self._simulator is not None \
            else self.store.horizon
        self.store.counter("verify.failed").record(time)

    def on_tick(self, time: int) -> None:
        """Per-delivery flush hook: advances the bucket horizon."""
        self.store.observe_time(time)

    def on_chaos(self, event: LocalEvent) -> None:
        """Fold an injected-fault event into chaos attribution (held
        messages being *released* are bookkeeping, not new faults)."""
        if event.action.startswith("release["):
            return
        party = event.party
        if party.is_server:
            self._chaos_hits[party] = self._chaos_hits.get(party, 0) + 1
        self.store.counter(
            f"chaos.events[{event.action}]").record(event.time)

    # -- operation accounting ------------------------------------------------

    def _complete(self, invocation: LocalEvent, completion: LocalEvent,
                  kind: str) -> None:
        latency = completion.time - invocation.time
        time = completion.time
        self.ops_completed += 1
        self.store.counter(f"ops.completed[{kind}]").record(time)
        self.store.digest(f"ops.latency[{kind}]").record(time, latency)
        shard = shard_of_tag(invocation.tag)
        if shard is not None:
            self.store.counter(f"shard.ops[s{shard}]").record(time)
            self.store.digest(
                f"shard.latency[s{shard}]").record(time, latency)
        bucket = time // self.store.bucket_ticks
        for tracker in self.trackers:
            # replication specs are judged at finalize, once the op's
            # traffic has finished propagating
            if tracker.spec.kind != KIND_REPLICATION \
                    and tracker.spec.matches(kind, shard):
                tracker.observe(bucket,
                                tracker.spec.is_good(True, latency))

    def finalize(self) -> None:
        """Close the run: every still-open invocation becomes a *bad*
        SLO observation anchored to its invocation bucket, and every
        operation's replication skew — how far the last fleet member
        lagged the quorum median in receiving its traffic, known only
        once propagation settled — is classified against the
        ``replication`` objectives.  Idempotent.
        """
        if self._finalized:
            return
        self._finalized = True
        open_invocations = [invocation
                            for stack in self._open_ops.values()
                            for invocation in stack]
        open_invocations.sort(key=lambda event: event.time)
        for invocation in open_invocations:
            self.ops_abandoned += 1
            kind = invocation.action
            shard = shard_of_tag(invocation.tag)
            bucket = invocation.time // self.store.bucket_ticks
            for tracker in self.trackers:
                if tracker.spec.kind != KIND_REPLICATION \
                        and tracker.spec.matches(kind, shard):
                    tracker.observe(bucket,
                                    tracker.spec.is_good(False, None))
        self._classify_replication()

    def _classify_replication(self) -> None:
        """Judge per-op replication skew (last fleet arrival minus the
        median arrival) against ``replication`` specs, anchored to the
        bucket where the last arrival landed."""
        observations = []
        for oid in sorted(self._op_delivery):
            arrivals = sorted(self._op_delivery[oid].values())
            if len(arrivals) < 2:
                continue
            skew = arrivals[-1] - arrivals[len(arrivals) // 2]
            observations.append((arrivals[-1], skew, oid))
        observations.sort()
        for settle_time, skew, oid in observations:
            kind, tag = self._op_meta[oid]
            shard = shard_of_tag(tag)
            self.store.digest("ops.replication_skew").record(
                settle_time, skew)
            bucket = settle_time // self.store.bucket_ticks
            for tracker in self.trackers:
                if tracker.spec.kind == KIND_REPLICATION \
                        and tracker.spec.matches(kind, shard):
                    tracker.observe(bucket,
                                    tracker.spec.is_good(True, skew))

    # -- health scoring ------------------------------------------------------

    def _components(self, server: PartyId,
                    max_sends: int,
                    rebroadcast_excess: Dict[PartyId, int]
                    ) -> Dict[str, float]:
        fails = self._verify_fails.get(server, 0)
        verify = fails / (fails + 2)
        present = self._quorum_present.get(server, 0)
        missed = self._quorum_missed.get(server, 0)
        total_quorums = present + missed
        quorum = missed / total_quorums if total_quorums else 0.0
        sends = self._sends.get(server, 0)
        silence = 1.0 - sends / max_sends if max_sends else 0.0
        hits = self._chaos_hits.get(server, 0)
        chaos = hits / (hits + 4)
        excess = rebroadcast_excess.get(server, 0)
        rebroadcast = excess / (excess + _REBROADCAST_HALFPOINT) \
            if excess > 0 else 0.0
        return {"verify": verify, "quorum": quorum, "silence": silence,
                "chaos": chaos, "rebroadcast": rebroadcast}

    def _rebroadcast_excess(self) -> Dict[PartyId, int]:
        """Per-server sends above the fleet median, summed over message
        types (an honest fleet re-broadcasts symmetrically)."""
        roster = self.roster
        if not roster:
            return {}
        mtypes = sorted({mtype for (_, mtype) in self._sends_by_type})
        excess: Dict[PartyId, int] = {}
        for mtype in mtypes:
            counts = sorted(self._sends_by_type.get((server, mtype), 0)
                            for server in roster)
            median = counts[len(counts) // 2]
            for server in roster:
                over = self._sends_by_type.get((server, mtype), 0) \
                    - median
                if over > 0:
                    excess[server] = excess.get(server, 0) + over
        return excess

    def server_health(self) -> List[Dict[str, Any]]:
        """Per-server suspicion rows, in server index order.

        Each row carries the blended ``score`` (0 = healthy, → 1 =
        certainly misbehaving), the per-signal ``components``, and the
        raw ``signals`` they were derived from.
        """
        roster = self.roster
        max_sends = max((self._sends.get(server, 0)
                         for server in roster), default=0)
        excess = self._rebroadcast_excess()
        rows = []
        for server in roster:
            components = self._components(server, max_sends, excess)
            score = sum(self.weights[name] * value
                        for name, value in components.items())
            rows.append({
                "server": str(server),
                "score": round(score, 6),
                "components": {name: round(value, 6)
                               for name, value in
                               sorted(components.items())},
                "signals": {
                    "sends": self._sends.get(server, 0),
                    "verify_fails": self._verify_fails.get(server, 0),
                    "quorums_present":
                        self._quorum_present.get(server, 0),
                    "quorums_missed":
                        self._quorum_missed.get(server, 0),
                    "chaos_hits": self._chaos_hits.get(server, 0),
                    "rebroadcast_excess": excess.get(server, 0),
                },
            })
        return rows

    def suspicion_scores(self) -> Dict[str, float]:
        """``{server: score}`` in server index order."""
        return {row["server"]: row["score"]
                for row in self.server_health()}

    def plane_totals(self) -> Dict[str, int]:
        """Run-level metadata-plane vs data-plane message/byte totals
        (:meth:`PlaneTraffic.to_json` form; envelopes excluded)."""
        return self.planes.to_json()

    # -- SLO evaluation ------------------------------------------------------

    def slo_report(self) -> List[Dict[str, Any]]:
        """Every objective evaluated at the current horizon bucket
        (call :meth:`finalize` first so abandoned ops are counted)."""
        end_bucket = self.store.horizon_bucket
        return [tracker.evaluate(end_bucket)
                for tracker in self.trackers]

    def alerts(self) -> List[Dict[str, Any]]:
        """The subset of :meth:`slo_report` whose multi-window burn
        alert is firing."""
        return [entry for entry in self.slo_report() if entry["alert"]]

    # -- export --------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The whole telemetry state as one JSON-exportable payload:
        ops totals, health rows, SLO evaluations, and every series."""
        self.finalize()
        return {
            "bucket_ticks": self.store.bucket_ticks,
            "horizon": self.store.horizon,
            "ops": {"completed": self.ops_completed,
                    "abandoned": self.ops_abandoned},
            "planes": self.plane_totals(),
            "health": self.server_health(),
            "slos": self.slo_report(),
            "series": self.store.snapshot(),
        }
