"""Causal tracing and instrumentation plane.

The simulator realizes the paper's logical global clock — every delivery
is a point in time — and stamps every message with the delivery that
caused it.  This package turns those raw facts into answers to *why*
questions: why did this write take 9 rounds, which quorum wait dominated
this read, which phase of Disperse is the bottleneck under a hostile
scheduler.

Typical use::

    recorder = TraceRecorder().attach(cluster.simulator)
    ...run a workload...
    for span in build_spans(recorder):
        path = critical_path(recorder, span)
        print(span.name, path.attribution)

Modules: :mod:`~repro.obs.recorder` (causal capture),
:mod:`~repro.obs.spans` (operation/phase spans),
:mod:`~repro.obs.critical_path` (happens-before latency attribution),
:mod:`~repro.obs.instruments` (counters/gauges/histograms),
:mod:`~repro.obs.timeseries` (windowed tick-bucket rollups),
:mod:`~repro.obs.health` (per-server suspicion scoring),
:mod:`~repro.obs.slo` (declarative objectives with burn-rate alerts),
:mod:`~repro.obs.export` (Perfetto / JSONL / text / HTML /
Prometheus), :mod:`~repro.obs.bench` (``BENCH_*.json`` emission), and
:mod:`~repro.obs.clock` (the only module allowed to read wall time).
"""

from repro.obs.bench import BENCH_ENV, bench_dir, emit_bench, to_jsonable
from repro.obs.clock import WallTimer, wall_seconds
from repro.obs.critical_path import (
    CriticalPath,
    PathHop,
    attribution_summary,
    critical_path,
)
from repro.obs.export import (
    export_health_html,
    export_perfetto,
    export_prometheus,
    export_trace_jsonl,
    health_dashboard,
    operation_breakdown_lines,
    text_report,
)
from repro.obs.health import DEFAULT_WEIGHTS, HealthMonitor, shard_of_tag
from repro.obs.instruments import Counter, Gauge, Histogram, Registry
from repro.obs.planes import (
    DATA_PLANE_MTYPES,
    PLANE_DATA,
    PLANE_METADATA,
    TRANSPORT_MTYPES,
    PlaneTraffic,
    operation_plane_traffic,
    plane_of_mtype,
    plane_traffic,
)
from repro.obs.recorder import MessageRecord, QuorumRelease, TraceRecorder
from repro.obs.slo import SloSpec, SloTracker, default_slos, evaluate_slos
from repro.obs.timeseries import Digest, Series, TimeSeriesStore
from repro.obs.spans import (
    KIND_OPERATION,
    KIND_PHASE,
    PHASE_BLOCK_FETCH,
    PHASE_BLOCK_PUSH,
    PHASE_DISPERSE,
    PHASE_LOCAL,
    PHASE_QUORUM_WAIT,
    PHASE_RBC,
    PHASE_RETRIEVE,
    PHASE_SIG_ROUND,
    PHASE_TS_QUERY,
    Span,
    build_spans,
    classify_phase,
    operation_records,
)

__all__ = [
    "BENCH_ENV",
    "bench_dir",
    "emit_bench",
    "to_jsonable",
    "WallTimer",
    "wall_seconds",
    "CriticalPath",
    "PathHop",
    "attribution_summary",
    "critical_path",
    "export_health_html",
    "export_perfetto",
    "export_prometheus",
    "export_trace_jsonl",
    "health_dashboard",
    "operation_breakdown_lines",
    "text_report",
    "DEFAULT_WEIGHTS",
    "HealthMonitor",
    "shard_of_tag",
    "SloSpec",
    "SloTracker",
    "default_slos",
    "evaluate_slos",
    "Digest",
    "Series",
    "TimeSeriesStore",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "MessageRecord",
    "QuorumRelease",
    "TraceRecorder",
    "DATA_PLANE_MTYPES",
    "PLANE_DATA",
    "PLANE_METADATA",
    "TRANSPORT_MTYPES",
    "PlaneTraffic",
    "operation_plane_traffic",
    "plane_of_mtype",
    "plane_traffic",
    "KIND_OPERATION",
    "KIND_PHASE",
    "PHASE_BLOCK_FETCH",
    "PHASE_BLOCK_PUSH",
    "PHASE_DISPERSE",
    "PHASE_LOCAL",
    "PHASE_QUORUM_WAIT",
    "PHASE_RBC",
    "PHASE_RETRIEVE",
    "PHASE_SIG_ROUND",
    "PHASE_TS_QUERY",
    "Span",
    "build_spans",
    "classify_phase",
    "operation_records",
]
