"""Trace exporters: Chrome/Perfetto trace-event JSON, JSONL, and text.

Three views of one recorded run:

* :func:`export_perfetto` — the Chrome trace-event format
  (``chrome://tracing`` / https://ui.perfetto.dev): one timeline row per
  operation with nested phase slices, quorum releases as instant
  events, and the critical-path attribution in each slice's ``args``.
  Logical clock ticks are rendered as microseconds.
* :func:`export_trace_jsonl` — the raw causal record (messages, local
  events, quorum releases, instruments) as one JSON object per line,
  for external analysis.
* :func:`text_report` — a human-readable per-operation latency
  breakdown plus the instrument summary, printed by ``repro trace
  --format text`` and (condensed) by ``repro simulate``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, TextIO

from repro.common.ids import PartyId
from repro.obs.critical_path import attribution_summary, critical_path
from repro.obs.recorder import TraceRecorder
from repro.obs.spans import Span, build_spans

#: perfetto requires numeric process ids; servers map to their index,
#: clients to an offset range so both stay readable in the UI.
_CLIENT_PID_OFFSET = 1000


def _pid_of(party: PartyId) -> int:
    return party.index if party.is_server \
        else _CLIENT_PID_OFFSET + party.index


def _span_args(span: Span) -> Dict[str, Any]:
    args: Dict[str, Any] = {
        "tag": span.tag,
        "messages": span.messages,
        "message_bytes": span.message_bytes,
    }
    for key, value in span.annotations.items():
        args[key] = value
    return args


def export_perfetto(recorder: TraceRecorder, stream: TextIO) -> int:
    """Write the run as Chrome trace-event JSON; returns the number of
    trace events emitted.

    Every completed operation gets its own thread row under its
    client's process, phases nest inside the operation slice (clamped
    to the operation interval; the true extent, including the
    post-completion tail, stays in ``args``), and the operation's
    ``args.critical_path`` carries the per-phase attribution whose
    values sum to the slice duration.
    """
    events: List[Dict[str, Any]] = []
    pids: Dict[int, str] = {}
    for ordinal, span in enumerate(build_spans(recorder), start=1):
        pid = _pid_of(span.party) if span.party is not None else 0
        pids.setdefault(pid, str(span.party))
        args = _span_args(span)
        path = critical_path(recorder, span)
        if path is not None:
            args["critical_path"] = dict(sorted(
                path.attribution.items()))
            args["critical_path_rounds"] = path.rounds
        events.append({
            "name": span.name, "cat": span.kind, "ph": "X",
            "pid": pid, "tid": ordinal,
            "ts": span.open_time, "dur": span.duration,
            "args": args,
        })
        for child in span.children:
            open_time = max(child.open_time, span.open_time)
            close_time = min(child.close_time, span.close_time)
            if close_time < open_time:
                continue  # pure tail traffic: outside the op slice
            child_args = _span_args(child)
            child_args["full_extent"] = [child.open_time,
                                         child.close_time]
            events.append({
                "name": child.name, "cat": child.kind, "ph": "X",
                "pid": pid, "tid": ordinal,
                "ts": open_time, "dur": close_time - open_time,
                "args": child_args,
            })
        for release in span.annotations.get("quorum_releases", ()):
            events.append({
                "name": f"quorum {release['mtype']}"
                        f">={release['threshold']}",
                "cat": "quorum", "ph": "i", "s": "t",
                "pid": pid, "tid": ordinal,
                "ts": release["time"],
                "args": dict(release),
            })
    for pid, name in sorted(pids.items()):
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": name},
        })
    json.dump({
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "logical (1 tick = 1 us)",
            "generator": "repro.obs",
        },
    }, stream, ensure_ascii=False)
    stream.write("\n")
    return len(events)


def _jsonable(value: Any) -> Any:
    if isinstance(value, bytes):
        return {"bytes": len(value)}
    if isinstance(value, PartyId):
        return str(value)
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def export_trace_jsonl(recorder: TraceRecorder, stream: TextIO) -> int:
    """Write the raw causal record as JSON lines; returns the line
    count.  Record types: ``message``, ``event``, ``quorum``,
    ``instrument``."""
    count = 0

    def emit(record: Dict[str, Any]) -> None:
        nonlocal count
        stream.write(json.dumps(record, ensure_ascii=False) + "\n")
        count += 1

    for record in recorder.messages.values():
        emit({
            "type": "message", "msg_id": record.msg_id,
            "tag": record.tag, "mtype": record.mtype,
            "sender": str(record.sender),
            "recipient": str(record.recipient),
            "send_time": record.send_time,
            "deliver_time": record.deliver_time,
            "wire_bytes": record.wire_bytes,
            "depth": record.depth,
            "cause_id": record.cause_id,
            "oid": record.oid,
        })
    for event in recorder.events:
        emit({
            "type": "event", "time": event.time,
            "party": str(event.party), "kind": event.kind,
            "tag": event.tag, "action": event.action,
            "payload": _jsonable(list(event.payload)),
            "cause_id": event.cause_id,
        })
    for release in recorder.quorum_releases:
        emit({
            "type": "quorum", "time": release.time,
            "party": str(release.party), "tag": release.tag,
            "mtype": release.mtype, "threshold": release.threshold,
            "quorum_msg_ids": list(release.quorum_msg_ids),
            "releasing_msg_id": release.releasing_msg_id,
        })
    for name, summary in recorder.registry.snapshot().items():
        emit({"type": "instrument", "name": name,
              "kind": summary["type"],
              **{key: value for key, value in summary.items()
                 if key != "type"}})
    return count


def operation_breakdown_lines(recorder: TraceRecorder) -> List[str]:
    """Per-operation latency attribution, one line per completed
    operation — what ``repro simulate`` prints."""
    lines = []
    for span in build_spans(recorder):
        path = critical_path(recorder, span)
        if path is None:
            continue
        lines.append(
            f"{path.op:<5} {path.oid:<8} {path.client:<4} "
            f"t={path.invoke_time}->{path.complete_time} "
            f"({path.duration:>4} ticks, {path.rounds} rounds): "
            f"{attribution_summary(path)}")
    return lines


def text_report(recorder: TraceRecorder) -> str:
    """The full human-readable report: operations with phase
    breakdowns, quorum waits, tails, and the instrument summary."""
    lines: List[str] = ["operations:"]
    spans = build_spans(recorder)
    if not spans:
        lines.append("  (none completed)")
    for span in spans:
        path = critical_path(recorder, span)
        lines.append(
            f"  {span.name:<14} client={span.annotations['client']} "
            f"t={span.open_time}->{span.close_time} "
            f"({span.duration} ticks, {span.messages} msgs, "
            f"{span.message_bytes} B)")
        if path is not None:
            lines.append(f"    critical path ({path.rounds} rounds): "
                         f"{attribution_summary(path)}")
        for child in span.children:
            lines.append(
                f"    {child.name:<12} t={child.open_time}->"
                f"{child.close_time} {child.messages} msgs "
                f"{child.message_bytes} B")
        for release in span.annotations.get("quorum_releases", ()):
            lines.append(
                f"    quorum {release['mtype']}>={release['threshold']} "
                f"at t={release['time']} "
                f"(released by msg {release['released_by']})")
        tail = span.annotations.get("tail_time", 0)
        if tail:
            lines.append(f"    tail: {tail} ticks of sub-protocol "
                         f"traffic after completion")
    lines.append("")
    lines.append("instruments:")
    snapshot = recorder.registry.snapshot()
    if not snapshot:
        lines.append("  (none)")
    for name, summary in snapshot.items():
        detail = ", ".join(f"{key}={value}"
                           for key, value in summary.items()
                           if key != "type")
        lines.append(f"  {summary['type']:<9} {name:<28} {detail}")
    return "\n".join(lines)
