"""Trace exporters: Chrome/Perfetto trace-event JSON, JSONL, and text.

Views of one recorded run:

* :func:`export_perfetto` — the Chrome trace-event format
  (``chrome://tracing`` / https://ui.perfetto.dev): one timeline row per
  operation with nested phase slices, quorum releases as instant
  events, and the critical-path attribution in each slice's ``args``.
  Logical clock ticks are rendered as microseconds.
* :func:`export_trace_jsonl` — the raw causal record (messages, local
  events, quorum releases, instruments) as one JSON object per line,
  for external analysis.
* :func:`text_report` — a human-readable per-operation latency
  breakdown plus the instrument summary, printed by ``repro trace
  --format text`` and (condensed) by ``repro simulate``.

Plus the health-plane renderers consumed by ``repro monitor``
(:mod:`repro.obs.health`):

* :func:`health_dashboard` — deterministic text dashboard (fleet
  health table, SLO burn table, op latency summary, series
  sparklines);
* :func:`export_prometheus` — Prometheus text exposition of the same
  state, for scraping pipelines;
* :func:`export_health_html` — a self-contained HTML report with
  inline-SVG sparklines (no external assets, no wall-clock
  timestamps, so reports are byte-stable across reruns).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, TextIO, Tuple

from repro.common.ids import PartyId
from repro.obs.critical_path import attribution_summary, critical_path
from repro.obs.recorder import TraceRecorder
from repro.obs.spans import Span, build_spans

#: perfetto requires numeric process ids; servers map to their index,
#: clients to an offset range so both stay readable in the UI.
_CLIENT_PID_OFFSET = 1000


def _pid_of(party: PartyId) -> int:
    return party.index if party.is_server \
        else _CLIENT_PID_OFFSET + party.index


def _span_args(span: Span) -> Dict[str, Any]:
    args: Dict[str, Any] = {
        "tag": span.tag,
        "messages": span.messages,
        "message_bytes": span.message_bytes,
    }
    for key, value in span.annotations.items():
        args[key] = value
    return args


def export_perfetto(recorder: TraceRecorder, stream: TextIO) -> int:
    """Write the run as Chrome trace-event JSON; returns the number of
    trace events emitted.

    Every completed operation gets its own thread row under its
    client's process, phases nest inside the operation slice (clamped
    to the operation interval; the true extent, including the
    post-completion tail, stays in ``args``), and the operation's
    ``args.critical_path`` carries the per-phase attribution whose
    values sum to the slice duration.
    """
    events: List[Dict[str, Any]] = []
    pids: Dict[int, str] = {}
    for ordinal, span in enumerate(build_spans(recorder), start=1):
        pid = _pid_of(span.party) if span.party is not None else 0
        pids.setdefault(pid, str(span.party))
        args = _span_args(span)
        path = critical_path(recorder, span)
        if path is not None:
            args["critical_path"] = dict(sorted(
                path.attribution.items()))
            args["critical_path_rounds"] = path.rounds
        events.append({
            "name": span.name, "cat": span.kind, "ph": "X",
            "pid": pid, "tid": ordinal,
            "ts": span.open_time, "dur": span.duration,
            "args": args,
        })
        for child in span.children:
            open_time = max(child.open_time, span.open_time)
            close_time = min(child.close_time, span.close_time)
            if close_time < open_time:
                continue  # pure tail traffic: outside the op slice
            child_args = _span_args(child)
            child_args["full_extent"] = [child.open_time,
                                         child.close_time]
            events.append({
                "name": child.name, "cat": child.kind, "ph": "X",
                "pid": pid, "tid": ordinal,
                "ts": open_time, "dur": close_time - open_time,
                "args": child_args,
            })
        for release in span.annotations.get("quorum_releases", ()):
            events.append({
                "name": f"quorum {release['mtype']}"
                        f">={release['threshold']}",
                "cat": "quorum", "ph": "i", "s": "t",
                "pid": pid, "tid": ordinal,
                "ts": release["time"],
                "args": dict(release),
            })
    for pid, name in sorted(pids.items()):
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": name},
        })
    json.dump({
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "logical (1 tick = 1 us)",
            "generator": "repro.obs",
        },
    }, stream, ensure_ascii=False)
    stream.write("\n")
    return len(events)


def _jsonable(value: Any) -> Any:
    if isinstance(value, bytes):
        return {"bytes": len(value)}
    if isinstance(value, PartyId):
        return str(value)
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def export_trace_jsonl(recorder: TraceRecorder, stream: TextIO) -> int:
    """Write the raw causal record as JSON lines; returns the line
    count.  Record types: ``message``, ``event``, ``quorum``,
    ``instrument``."""
    count = 0

    def emit(record: Dict[str, Any]) -> None:
        nonlocal count
        stream.write(json.dumps(record, ensure_ascii=False) + "\n")
        count += 1

    for record in recorder.messages.values():
        emit({
            "type": "message", "msg_id": record.msg_id,
            "tag": record.tag, "mtype": record.mtype,
            "sender": str(record.sender),
            "recipient": str(record.recipient),
            "send_time": record.send_time,
            "deliver_time": record.deliver_time,
            "wire_bytes": record.wire_bytes,
            "depth": record.depth,
            "cause_id": record.cause_id,
            "oid": record.oid,
        })
    for event in recorder.events:
        emit({
            "type": "event", "time": event.time,
            "party": str(event.party), "kind": event.kind,
            "tag": event.tag, "action": event.action,
            "payload": _jsonable(list(event.payload)),
            "cause_id": event.cause_id,
        })
    for release in recorder.quorum_releases:
        emit({
            "type": "quorum", "time": release.time,
            "party": str(release.party), "tag": release.tag,
            "mtype": release.mtype, "threshold": release.threshold,
            "quorum_msg_ids": list(release.quorum_msg_ids),
            "releasing_msg_id": release.releasing_msg_id,
        })
    for name, summary in recorder.registry.snapshot().items():
        emit({"type": "instrument", "name": name,
              "kind": summary["type"],
              **{key: value for key, value in summary.items()
                 if key != "type"}})
    return count


def operation_breakdown_lines(recorder: TraceRecorder) -> List[str]:
    """Per-operation latency attribution, one line per completed
    operation — what ``repro simulate`` prints."""
    lines = []
    for span in build_spans(recorder):
        path = critical_path(recorder, span)
        if path is None:
            continue
        lines.append(
            f"{path.op:<5} {path.oid:<8} {path.client:<4} "
            f"t={path.invoke_time}->{path.complete_time} "
            f"({path.duration:>4} ticks, {path.rounds} rounds): "
            f"{attribution_summary(path)}")
    return lines


def text_report(recorder: TraceRecorder) -> str:
    """The full human-readable report: operations with phase
    breakdowns, quorum waits, tails, and the instrument summary."""
    lines: List[str] = ["operations:"]
    spans = build_spans(recorder)
    if not spans:
        lines.append("  (none completed)")
    for span in spans:
        path = critical_path(recorder, span)
        lines.append(
            f"  {span.name:<14} client={span.annotations['client']} "
            f"t={span.open_time}->{span.close_time} "
            f"({span.duration} ticks, {span.messages} msgs, "
            f"{span.message_bytes} B)")
        if path is not None:
            lines.append(f"    critical path ({path.rounds} rounds): "
                         f"{attribution_summary(path)}")
        for child in span.children:
            lines.append(
                f"    {child.name:<12} t={child.open_time}->"
                f"{child.close_time} {child.messages} msgs "
                f"{child.message_bytes} B")
        for release in span.annotations.get("quorum_releases", ()):
            lines.append(
                f"    quorum {release['mtype']}>={release['threshold']} "
                f"at t={release['time']} "
                f"(released by msg {release['released_by']})")
        tail = span.annotations.get("tail_time", 0)
        if tail:
            lines.append(f"    tail: {tail} ticks of sub-protocol "
                         f"traffic after completion")
    lines.append("")
    lines.append("instruments:")
    snapshot = recorder.registry.snapshot()
    if not snapshot:
        lines.append("  (none)")
    for name, summary in snapshot.items():
        detail = ", ".join(f"{key}={value}"
                           for key, value in summary.items()
                           if key != "type")
        lines.append(f"  {summary['type']:<9} {name:<28} {detail}")
    return "\n".join(lines)


# -- health plane ------------------------------------------------------------

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def _sparkline(values: List[float]) -> str:
    """Render a value sequence as unicode block characters (empty
    input renders empty)."""
    if not values:
        return ""
    top = max(values)
    if top <= 0:
        return _SPARK_BLOCKS[0] * len(values)
    scale = len(_SPARK_BLOCKS) - 1
    return "".join(_SPARK_BLOCKS[int(round(value / top * scale))]
                   for value in values)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return str(int(value)) if value.is_integer() else f"{value:.3f}"
    return str(value)


def health_dashboard(monitor) -> str:
    """The ``repro monitor`` text dashboard for one finished run.

    Sections: fleet health (suspicion scores with per-signal
    components), SLO burn rates with alert flags, metadata-plane vs
    data-plane wire traffic, session-cache decision counters
    (``kv.cache[...]``), repair-plane progress (``repair.*`` counters
    plus the ``repair.lag`` backlog sparkline when a coordinator ran),
    operation latency summary per op type, and a
    sparkline per time-series.  Output is a pure function of the
    monitor's state — byte-identical across repeated runs of the same
    seed.
    """
    monitor.finalize()
    lines: List[str] = []
    lines.append("== fleet health ==")
    rows = monitor.server_health()
    if not rows:
        lines.append("  (no servers)")
    else:
        lines.append(f"  {'server':<6} {'score':>7}  "
                     f"{'verify':>7} {'quorum':>7} {'silence':>7} "
                     f"{'chaos':>7} {'rebcast':>7}  signals")
        for row in rows:
            components = row["components"]
            signals = row["signals"]
            detail = (f"sends={signals['sends']} "
                      f"vfail={signals['verify_fails']} "
                      f"qmiss={signals['quorums_missed']}/"
                      f"{signals['quorums_missed'] + signals['quorums_present']} "
                      f"chaos={signals['chaos_hits']} "
                      f"rebx={signals['rebroadcast_excess']}")
            lines.append(
                f"  {row['server']:<6} {row['score']:>7.3f}  "
                f"{components['verify']:>7.3f} "
                f"{components['quorum']:>7.3f} "
                f"{components['silence']:>7.3f} "
                f"{components['chaos']:>7.3f} "
                f"{components['rebroadcast']:>7.3f}  {detail}")
    lines.append("")
    lines.append("== slos ==")
    report = monitor.slo_report()
    if not report:
        lines.append("  (none)")
    else:
        lines.append(f"  {'name':<16} {'objective':>9} {'good':>6} "
                     f"{'bad':>5} {'compl':>7} {'fast':>7} {'slow':>7}  "
                     f"alert")
        for entry in report:
            flag = "FIRING" if entry["alert"] else "ok"
            lines.append(
                f"  {entry['name']:<16} {entry['objective']:>9.4f} "
                f"{entry['good']:>6} {entry['bad']:>5} "
                f"{entry['compliance']:>7.4f} "
                f"{entry['fast_burn']:>7.2f} {entry['slow_burn']:>7.2f}  "
                f"{flag}")
    lines.append("")
    lines.append("== planes ==")
    planes = monitor.plane_totals()
    total = planes["metadata_bytes"] + planes["data_bytes"]
    data_share = planes["data_bytes"] / total if total else 0.0
    lines.append(f"  metadata {planes['metadata_messages']:>6} msgs "
                 f"{planes['metadata_bytes']:>10} B")
    lines.append(f"  data     {planes['data_messages']:>6} msgs "
                 f"{planes['data_bytes']:>10} B "
                 f"({data_share:.1%} of bytes)")
    lines.append("")
    lines.append("== session cache ==")
    cache_counters = [
        (name, summary["value"]) for name, summary
        in sorted(monitor.recorder.registry.snapshot().items())
        if name.startswith("kv.cache[")]
    if cache_counters:
        for name, value in cache_counters:
            label = name[len("kv.cache["):-1]
            lines.append(f"  {label:<16} {_fmt(value):>8}")
    else:
        lines.append("  (no session-cache activity)")
    lines.append("")
    lines.append("== repair ==")
    repair_counters = [
        (name, summary["value"]) for name, summary
        in sorted(monitor.recorder.registry.snapshot().items())
        if name.startswith("repair.")]
    lag_series = monitor.store.get("repair.lag")
    if not repair_counters and lag_series is None:
        lines.append("  (repair plane not attached)")
    else:
        for name, value in repair_counters:
            label = name[len("repair."):]
            lines.append(f"  {label:<16} {_fmt(value):>8}")
        if lag_series is not None and len(lag_series):
            values = [value for _, value in lag_series.values()]
            lines.append(f"  {'lag':<16} {_fmt(values[-1]):>8} "
                         f"{_sparkline(values)}")
    lines.append("")
    lines.append("== operations ==")
    lines.append(f"  completed={monitor.ops_completed} "
                 f"abandoned={monitor.ops_abandoned} "
                 f"horizon={monitor.store.horizon} ticks "
                 f"(bucket={monitor.store.bucket_ticks})")
    for kind in ("write", "read"):
        series = monitor.store.get(f"ops.latency[{kind}]")
        if series is None or not len(series):
            continue
        span = series.last_bucket - series.first_bucket + 1
        window = series.window(series.last_bucket, span)
        lines.append(
            f"  {kind:<5} n={window['count']} "
            f"mean={window['mean']:.1f} p50={_fmt(window['p50'])} "
            f"p99={_fmt(window['p99'])} max={_fmt(window['max'])}")
    lines.append("")
    lines.append("== series ==")
    names = monitor.store.names()
    if not names:
        lines.append("  (none)")
    for name in names:
        series = monitor.store.get(name)
        values = [value for _, value in series.values()]
        dropped = f" (+{series.dropped_buckets} dropped)" \
            if series.dropped_buckets else ""
        lines.append(f"  {name:<26} {series.kind:<7} "
                     f"total={_fmt(series.total())} "
                     f"{_sparkline(values)}{dropped}")
    return "\n".join(lines)


def _prom_name(name: str) -> Tuple[str, str]:
    """Split an instrument-style name ``base[label]`` into a
    Prometheus-safe metric name plus label string."""
    label = ""
    if name.endswith("]") and "[" in name:
        name, raw = name[:-1].split("[", 1)
        label = raw
    metric = "repro_" + "".join(
        ch if ch.isalnum() else "_" for ch in name)
    return metric, label


def export_prometheus(monitor, stream: TextIO) -> int:
    """Write the monitor state in Prometheus text exposition format;
    returns the number of sample lines emitted."""
    monitor.finalize()
    count = 0

    def emit(line: str) -> None:
        nonlocal count
        stream.write(line + "\n")
        if not line.startswith("#"):
            count += 1

    emit("# TYPE repro_health_suspicion gauge")
    for row in monitor.server_health():
        emit(f'repro_health_suspicion{{server="{row["server"]}"}} '
             f'{row["score"]}')
    # The exposition format wants each metric's samples as one group
    # directly under its own TYPE line, so iterate metric-major.
    slo_entries = monitor.slo_report()
    emit("# TYPE repro_slo_compliance gauge")
    for entry in slo_entries:
        emit(f'repro_slo_compliance{{slo="{entry["name"]}"}} '
             f'{entry["compliance"]}')
    emit("# TYPE repro_slo_burn_rate gauge")
    for entry in slo_entries:
        emit(f'repro_slo_burn_rate{{slo="{entry["name"]}",'
             f'window="fast"}} {entry["fast_burn"]}')
        emit(f'repro_slo_burn_rate{{slo="{entry["name"]}",'
             f'window="slow"}} {entry["slow_burn"]}')
    emit("# TYPE repro_slo_alert gauge")
    for entry in slo_entries:
        emit(f'repro_slo_alert{{slo="{entry["name"]}"}} '
             f'{1 if entry["alert"] else 0}')
    # ``_total`` suffix keeps the aggregates clear of the per-label
    # ``repro_ops_completed{label=...}`` series metric below.
    emit("# TYPE repro_ops_completed_total counter")
    emit(f"repro_ops_completed_total {monitor.ops_completed}")
    emit("# TYPE repro_ops_abandoned_total counter")
    emit(f"repro_ops_abandoned_total {monitor.ops_abandoned}")
    # Series sharing a metric name (labelled variants) must land in one
    # group under a single TYPE line, so collect metric-major first.
    groups: Dict[str, List[Tuple[str, Any]]] = {}
    for name in monitor.store.names():
        metric, label = _prom_name(name)
        groups.setdefault(metric, []).append(
            (label, monitor.store.get(name)))
    for metric, entries in groups.items():
        kind = entries[0][1].kind
        if kind == "counter":
            emit(f"# TYPE {metric} counter")
        elif kind == "gauge":
            emit(f"# TYPE {metric} gauge")
        else:
            emit(f"# TYPE {metric} summary")
        for label, series in entries:
            labels = f'{{label="{label}"}}' if label else ""
            if series.kind == "counter":
                emit(f"{metric}{labels} {series.total()}")
                continue
            span = series.last_bucket - series.first_bucket + 1
            window = series.window(series.last_bucket, span)
            if series.kind == "gauge":
                emit(f"{metric}{labels} {window['last']}")
                continue
            base = labels[:-1] + "," if labels else "{"
            emit(f'{metric}{base}quantile="0.5"}} {window["p50"]}')
            emit(f'{metric}{base}quantile="0.99"}} {window["p99"]}')
            emit(f"{metric}_count{labels} {window['count']}")
            emit(f"{metric}_sum{labels} {window['sum']}")
    return count


def _svg_sparkline(values: List[float], width: int = 240,
                   height: int = 28) -> str:
    """An inline-SVG polyline sparkline (empty series renders an empty
    frame)."""
    if not values:
        return (f'<svg width="{width}" height="{height}" '
                f'class="spark"></svg>')
    top = max(max(values), 1e-9)
    step = width / max(len(values), 1)
    points = []
    for index, value in enumerate(values):
        x = round(index * step + step / 2, 1)
        y = round(height - 2 - (value / top) * (height - 4), 1)
        points.append(f"{x},{y}")
    return (f'<svg width="{width}" height="{height}" class="spark">'
            f'<polyline fill="none" stroke="#2b6cb0" stroke-width="1.5" '
            f'points="{" ".join(points)}"/></svg>')


def export_health_html(monitor, stream: TextIO) -> None:
    """Write a self-contained HTML health report (tables + inline-SVG
    sparklines; no scripts, assets, or timestamps)."""
    monitor.finalize()
    out: List[str] = []
    out.append("<!DOCTYPE html>")
    out.append("<html><head><meta charset='utf-8'>"
               "<title>repro health report</title><style>")
    out.append("body{font-family:sans-serif;margin:24px;color:#1a202c}"
               "table{border-collapse:collapse;margin:12px 0}"
               "th,td{border:1px solid #cbd5e0;padding:4px 10px;"
               "text-align:right;font-size:13px}"
               "th{background:#edf2f7}td.l,th.l{text-align:left}"
               ".alert{color:#c53030;font-weight:bold}"
               ".ok{color:#2f855a}")
    out.append("</style></head><body>")
    out.append("<h1>repro health report</h1>")
    out.append(f"<p>horizon {monitor.store.horizon} ticks · bucket "
               f"{monitor.store.bucket_ticks} ticks · "
               f"{monitor.ops_completed} ops completed · "
               f"{monitor.ops_abandoned} abandoned</p>")
    out.append("<h2>Fleet health</h2>")
    out.append("<table><tr><th class='l'>server</th><th>score</th>"
               "<th>verify</th><th>quorum</th><th>silence</th>"
               "<th>chaos</th><th>rebroadcast</th></tr>")
    for row in monitor.server_health():
        components = row["components"]
        out.append(
            f"<tr><td class='l'>{row['server']}</td>"
            f"<td>{row['score']:.3f}</td>"
            f"<td>{components['verify']:.3f}</td>"
            f"<td>{components['quorum']:.3f}</td>"
            f"<td>{components['silence']:.3f}</td>"
            f"<td>{components['chaos']:.3f}</td>"
            f"<td>{components['rebroadcast']:.3f}</td></tr>")
    out.append("</table>")
    out.append("<h2>SLOs</h2>")
    out.append("<table><tr><th class='l'>objective</th><th>good</th>"
               "<th>bad</th><th>compliance</th><th>fast burn</th>"
               "<th>slow burn</th><th>alert</th></tr>")
    for entry in monitor.slo_report():
        flag = "<span class='alert'>FIRING</span>" if entry["alert"] \
            else "<span class='ok'>ok</span>"
        out.append(
            f"<tr><td class='l'>{entry['description']}</td>"
            f"<td>{entry['good']}</td><td>{entry['bad']}</td>"
            f"<td>{entry['compliance']:.4f}</td>"
            f"<td>{entry['fast_burn']:.2f}</td>"
            f"<td>{entry['slow_burn']:.2f}</td><td>{flag}</td></tr>")
    out.append("</table>")
    out.append("<h2>Time series</h2>")
    out.append("<table><tr><th class='l'>series</th><th>kind</th>"
               "<th>total</th><th class='l'>shape</th></tr>")
    for name in monitor.store.names():
        series = monitor.store.get(name)
        values = [value for _, value in series.values()]
        out.append(
            f"<tr><td class='l'>{name}</td><td>{series.kind}</td>"
            f"<td>{_fmt(series.total())}</td>"
            f"<td class='l'>{_svg_sparkline(values)}</td></tr>")
    out.append("</table>")
    out.append("</body></html>")
    stream.write("\n".join(out) + "\n")
