"""Instrument registry: counters, gauges, and logical-time histograms.

The registry is the aggregate side of the observability plane: where the
trace recorder keeps *every* message record, instruments keep cheap
running summaries keyed by name — inbox queue depths, per-message-type
wire sizes, rounds-per-quorum.  Instruments are deterministic (snapshots
iterate names in sorted order) and purely logical; wall-clock timers
live in :mod:`repro.obs.clock` so the determinism lint stays clean here.

Names are dotted, with an optional ``[label]`` suffix for one dimension
(e.g. ``wire.bytes[avid-echo]``); :meth:`Registry.snapshot` renders
everything into plain dictionaries for JSON export.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.common.errors import SimulationError


class Counter:
    """A monotonically increasing count (messages sent, quorums fired)."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise SimulationError(f"counter {self.name} cannot decrease")
        self.value += amount

    def summary(self) -> Dict[str, Any]:
        """The counter as a plain JSON-exportable dictionary."""
        return {"type": "counter", "value": self.value}


class Gauge:
    """A sampled level (inbox depth, in-flight messages): keeps the last
    value plus the extremes seen across the run."""

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None
        self.max_value: Optional[float] = None
        self.min_value: Optional[float] = None
        self.samples = 0

    def set(self, value: float) -> None:
        """Record a new level."""
        self.value = value
        self.samples += 1
        if self.max_value is None or value > self.max_value:
            self.max_value = value
        if self.min_value is None or value < self.min_value:
            self.min_value = value

    def summary(self) -> Dict[str, Any]:
        """Last/min/max/samples as a plain JSON-exportable dictionary."""
        return {"type": "gauge", "value": self.value,
                "min": self.min_value, "max": self.max_value,
                "samples": self.samples}


class Histogram:
    """A value distribution (wire sizes, quorum rounds, wait times).

    Simulation runs are small enough to retain raw observations, so
    percentiles are exact, not estimated.
    """

    def __init__(self, name: str):
        self.name = name
        self.values: List[float] = []
        self._sorted: Optional[List[float]] = None

    def record(self, value: float) -> None:
        """Add one observation."""
        self.values.append(value)
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.total / len(self.values) if self.values else 0.0

    def percentile(self, q: float) -> float:
        """Exact ``q``-th percentile (``0 <= q <= 100``) by
        nearest-rank; 0 for an empty histogram.

        The sorted view is cached across calls (windowed rollups take
        several percentiles per bucket) and invalidated by ``record``.
        """
        if not 0 <= q <= 100:
            raise SimulationError(f"percentile {q} out of range")
        if not self.values:
            return 0.0
        if self._sorted is None:
            self._sorted = sorted(self.values)
        ordered = self._sorted
        rank = max(0, min(len(ordered) - 1,
                          int(round(q / 100 * (len(ordered) - 1)))))
        return ordered[rank]

    def summary(self) -> Dict[str, Any]:
        """Count/sum/mean/extremes/p50/p90/p99/p999 as a plain
        JSON-exportable dictionary."""
        if not self.values:
            return {"type": "histogram", "count": 0}
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": min(self.values),
            "max": max(self.values),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "p999": self.percentile(99.9),
        }


class Registry:
    """Create-or-get store of named instruments.

    A name is bound to one instrument kind for the registry's lifetime;
    asking for the same name as a different kind is an error (it would
    silently fork the measurement).
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}

    def _get(self, name: str, cls):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise SimulationError(
                f"instrument {name!r} already registered as "
                f"{type(instrument).__name__}")
        return instrument

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name`` (created on first
        use)."""
        return self._get(name, Histogram)

    def __len__(self) -> int:
        return len(self._instruments)

    def names(self) -> List[str]:
        """All registered instrument names, sorted (deterministic)."""
        return sorted(self._instruments)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All instruments as plain ``{name: summary}`` dictionaries, in
        sorted name order — the JSON-exportable view."""
        return {name: self._instruments[name].summary()
                for name in self.names()}
