"""Critical-path extraction over the happens-before DAG.

Every delivery in the simulator activates exactly one party, and every
message carries the ``msg_id`` of the delivery that activated its sender
(:attr:`repro.net.message.Message.cause_id`).  Walking those links
backward from the delivery that completed an operation yields the
*message chain that determined the operation's latency* — the causal
spine the adversarial scheduler could not shorten.

The chain decomposes the operation's logical-clock duration exactly
(telescoping sum)::

    duration =   (first send - invocation)                  -> local
               + sum over hops of (deliver - send)          -> hop phase
               + sum of gaps between a delivery and the
                 next send it triggered                     -> local
               + (completion - last delivery)               -> local

Each hop's in-flight interval is attributed to its protocol phase
(:func:`repro.obs.spans.classify_phase`): the Disperse echo/ready
rounds, the reliable-broadcast rounds, the timestamp query, the final
quorum wait.  When a concurrent operation's traffic completed this one
(e.g. a listener forwarding a fresh value to a reader), the chain can
reach back before the invocation; the pre-invocation portion shows up
as a *negative* local share, keeping the sum exact rather than hiding
the cross-operation causality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.obs.recorder import MessageRecord, TraceRecorder
from repro.obs.spans import PHASE_LOCAL, Span, classify_phase


@dataclass(frozen=True)
class PathHop:
    """One message on the critical path.

    ``local_gap`` is the logical time between the previous hop's
    delivery (or the invocation) and this message's send — the sender's
    local processing share; ``queue_wait`` is the message's own
    in-flight time, attributed to ``phase``.
    """

    record: MessageRecord
    phase: str
    local_gap: int
    queue_wait: int


@dataclass
class CriticalPath:
    """The latency explanation of one completed operation."""

    tag: str
    oid: str
    op: str
    client: str
    invoke_time: int
    complete_time: int
    hops: List[PathHop]
    #: logical-clock share per phase (including ``local``); sums to
    #: ``duration`` exactly.
    attribution: Dict[str, int]

    @property
    def duration(self) -> int:
        return self.complete_time - self.invoke_time

    @property
    def rounds(self) -> int:
        """Length of the causal spine in message delays."""
        return len(self.hops)

    def dominant_phase(self) -> Optional[str]:
        """The phase with the largest latency share, if any."""
        if not self.attribution:
            return None
        return max(sorted(self.attribution),
                   key=lambda phase: self.attribution[phase])


def critical_path(recorder: TraceRecorder,
                  span: Span) -> Optional[CriticalPath]:
    """Extract the critical path of one operation span.

    Returns ``None`` for spans that are not operation spans or carry no
    completion cause *and* no duration to attribute.  The chain is
    walked from the operation's ``completion_cause`` annotation (the
    delivery processed when the completing output action fired).
    """
    annotations = span.annotations
    if "oid" not in annotations:
        return None
    chain = recorder.causal_chain(annotations.get("completion_cause"))
    hops: List[PathHop] = []
    attribution: Dict[str, int] = {}

    def attribute(phase: str, amount: int) -> None:
        if amount != 0:
            attribution[phase] = attribution.get(phase, 0) + amount

    previous = span.open_time
    for record in chain:
        if record.deliver_time is None:
            continue  # undelivered messages cannot be causes
        phase = classify_phase(record.tag, record.mtype, span.tag)
        local_gap = record.send_time - previous
        queue_wait = record.deliver_time - record.send_time
        hops.append(PathHop(record=record, phase=phase,
                            local_gap=local_gap, queue_wait=queue_wait))
        attribute(PHASE_LOCAL, local_gap)
        attribute(phase, queue_wait)
        previous = record.deliver_time
    attribute(PHASE_LOCAL, span.close_time - previous)
    return CriticalPath(
        tag=span.tag,
        oid=annotations["oid"],
        op=annotations.get("op", ""),
        client=annotations.get("client", ""),
        invoke_time=span.open_time,
        complete_time=span.close_time,
        hops=hops,
        attribution=attribution)


def attribution_summary(path: CriticalPath) -> str:
    """One line: phase shares largest-first, e.g.
    ``disperse 41, rbc 18, ts-query 12, quorum-wait 8, local 3``."""
    parts = sorted(path.attribution.items(),
                   key=lambda item: (-item[1], item[0]))
    return ", ".join(f"{phase} {share}" for phase, share in parts)
