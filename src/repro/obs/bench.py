"""Machine-readable benchmark emission and the ``repro bench`` harness.

The experiments print human-readable tables; performance tracking needs
the same numbers as data.  When a bench directory is configured —
``repro experiments --bench-dir DIR`` or the ``REPRO_BENCH_DIR``
environment variable — :func:`emit_bench` writes each experiment's
structured rows as ``BENCH_<name>.json`` into it; with no directory
configured it is a no-op, so experiments stay dependency- and
side-effect-free by default.

The JSON payload round-trips dataclass rows (via
``dataclasses.asdict``), :class:`~repro.common.ids.PartyId` values
(as their printed names), and byte strings (as length placeholders).

This module also hosts the ``repro bench`` runners: micro benchmarks
over the data-plane kernels (GF matrix-vector products, repeated erasure
decodes, Merkle trees, hashing, wire serialization) and macro benchmarks
running end-to-end ``Atomic`` write/read workloads at several cluster
sizes.  All workloads are seeded and deterministic, so a baseline row
and an after row measure the *same* logical schedule — only the wall
clock differs.  Wall-clock reads go through :mod:`repro.obs.clock`, the
library's only sanctioned real-time source.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.common.ids import PartyId
from repro.obs.clock import wall_seconds

#: environment variable naming the directory ``BENCH_*.json`` files go to
BENCH_ENV = "REPRO_BENCH_DIR"


def bench_dir() -> Optional[Path]:
    """The configured bench output directory, or ``None`` if benching
    is disabled."""
    configured = os.environ.get(BENCH_ENV, "").strip()
    return Path(configured) if configured else None


def to_jsonable(value: Any) -> Any:
    """Convert experiment payloads (dataclasses, PartyIds, bytes,
    containers) to JSON-serializable structures."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return to_jsonable(dataclasses.asdict(value))
    if isinstance(value, bytes):
        return {"bytes": len(value)}
    if isinstance(value, PartyId):
        return str(value)
    if isinstance(value, dict):
        return {str(key): to_jsonable(item)
                for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def emit_bench(name: str, payload: Any,
               directory: Optional[Path] = None) -> Optional[Path]:
    """Write ``BENCH_<name>.json`` into the bench directory.

    ``directory`` overrides the environment configuration; with neither
    set, nothing is written and ``None`` is returned.  Returns the path
    written otherwise.
    """
    target_dir = directory if directory is not None else bench_dir()
    if target_dir is None:
        return None
    target_dir.mkdir(parents=True, exist_ok=True)
    path = target_dir / f"BENCH_{name}.json"
    document = {"bench": name, "data": to_jsonable(payload)}
    path.write_text(json.dumps(document, indent=2, sort_keys=True)
                    + "\n", encoding="utf-8")
    return path


# -- the ``repro bench`` harness ------------------------------------------


@dataclass(frozen=True)
class BenchRow:
    """One benchmark measurement: a named kernel at fixed parameters.

    ``seconds`` is the total wall time for ``iterations`` repetitions;
    ``per_iteration_us`` is derived so rows stay self-describing when
    compared across files with different iteration counts.
    """

    name: str
    params: Dict[str, Any]
    iterations: int
    seconds: float
    per_iteration_us: float = field(init=False)

    def __post_init__(self) -> None:
        per_iter = (self.seconds / self.iterations) * 1e6 \
            if self.iterations else 0.0
        object.__setattr__(self, "per_iteration_us", per_iter)


def _timed(name: str, params: Dict[str, Any], iterations: int,
           body: Callable[[], Any]) -> BenchRow:
    """Run ``body`` ``iterations`` times under the wall clock."""
    start = wall_seconds()
    for _ in range(iterations):
        body()
    elapsed = wall_seconds() - start
    return BenchRow(name=name, params=params, iterations=iterations,
                    seconds=elapsed)


def _micro_value(size: int) -> bytes:
    """A deterministic pseudo-random-looking value of ``size`` bytes."""
    pattern = bytes((i * 131 + 17) % 256 for i in range(251))
    repeats = size // len(pattern) + 1
    return (pattern * repeats)[:size]


def run_micro_benchmarks(quick: bool = False) -> List[BenchRow]:
    """Kernel microbenchmarks: erasure coding, hashing, serialization.

    ``micro.decode_repeated`` decodes the *same* index subset over and
    over — the dominant access pattern of the F1/F2/F3 sweeps, where the
    chosen k-subsets recur constantly — so it measures the decode-plan
    cache directly.  The subset deliberately mixes systematic and parity
    indices so a matrix solve is actually exercised.
    """
    from repro.common.serialization import encoded_size
    from repro.crypto.hashing import hash_vector
    from repro.crypto.merkle import MerkleTree
    from repro.erasure.coder import ErasureCoder
    from repro.net.message import Message
    from repro.common.ids import client_id, server_id

    n, k = 16, 6
    value = _micro_value(64 * 1024)
    coder = ErasureCoder(n, k)
    blocks = coder.encode(value)
    # Half systematic, half parity (1-based indices): forces a solve.
    mixed = [1, 2, 3, 14, 15, 16]
    mixed_blocks = [(index, blocks[index - 1]) for index in mixed]
    # Distinct payloads decoded round-robin: every call sees fresh block
    # contents (so value-level memoization cannot hit) but the same index
    # subset (so a decode-plan cache can) — the kernel-speed row.
    fresh_value_bytes = 16 * 1024
    fresh = []
    for variant in range(64):
        variant_value = bytes([variant]) + _micro_value(
            fresh_value_bytes - 1)
        variant_blocks = coder.encode(variant_value)
        fresh.append([(index, variant_blocks[index - 1])
                      for index in mixed])
    fresh_cursor = [0]

    def _next_fresh():
        supplied = fresh[fresh_cursor[0] % len(fresh)]
        fresh_cursor[0] += 1
        return coder.decode(supplied)

    scale = 1 if quick else 20
    rows = [
        _timed("micro.gf_matvec_encode",
               {"n": n, "k": k, "value_bytes": len(value)},
               3 * scale, lambda: coder.encode(value)),
        _timed("micro.decode_repeated",
               {"n": n, "k": k, "indices": list(mixed),
                "value_bytes": len(value)},
               10 * scale, lambda: coder.decode(mixed_blocks)),
        _timed("micro.decode_fresh",
               {"n": n, "k": k, "indices": list(mixed),
                "value_bytes": fresh_value_bytes, "variants": len(fresh)},
               10 * scale, _next_fresh),
        _timed("micro.merkle_tree",
               {"leaves": n, "leaf_bytes": len(blocks[0])},
               25 * scale, lambda: MerkleTree(blocks).proof(0)),
        _timed("micro.hash_vector_repeated",
               {"blocks": n, "block_bytes": len(blocks[0])},
               25 * scale, lambda: hash_vector(blocks)),
    ]
    payload = ("reg|disp.oid1", "send", (7, blocks[0], tuple(
        hash_vector(blocks))))
    message = Message(tag="reg", mtype="store", sender=client_id(1),
                      recipient=server_id(1), payload=payload, msg_id=0)
    rows.append(_timed("micro.message_wire_size",
                       {"payload_blocks": 1, "digests": n},
                       200 * scale, message.wire_size))
    rows.append(_timed("micro.encoded_size_raw",
                       {"payload_blocks": 1, "digests": n},
                       20 * scale, lambda: encoded_size(payload)))
    return rows


def _macro_case(n: int, seed: int, value_size: int,
                protocol: str = "atomic") -> BenchRow:
    from repro.cluster import build_cluster
    from repro.config import SystemConfig
    from repro.net.schedulers import RandomScheduler
    from repro.workloads.generator import random_workload, run_workload

    t = (n - 1) // 3
    # atomic_md requires k <= n - 2t; every other protocol takes the
    # config default (n - t).
    k = t + 1 if protocol == "atomic_md" else None
    config = SystemConfig(n=n, t=t, k=k, seed=seed)
    cluster = build_cluster(config, protocol=protocol, num_clients=2,
                            scheduler=RandomScheduler(seed))
    operations = random_workload(2, writes=3, reads=3, seed=seed,
                                 value_size=value_size)
    start = wall_seconds()
    run_workload(cluster, "reg", operations, seed=seed)
    elapsed = wall_seconds() - start
    metrics = cluster.simulator.metrics
    return BenchRow(
        name=f"macro.{protocol}_rw",
        params={"n": n, "t": t, "k": config.k, "writes": 3, "reads": 3,
                "value_bytes": value_size,
                "messages": metrics.total_messages,
                "message_bytes": metrics.total_bytes},
        iterations=1, seconds=elapsed)


def run_macro_benchmarks(quick: bool = False) -> List[BenchRow]:
    """End-to-end write/read workloads at several ``n``.

    Each case runs a fixed seeded workload (3 writes + 3 reads from 2
    clients under a seeded random scheduler), so schedules — and thus
    message counts — are identical across baseline/after runs.  Both
    the full-value ``atomic`` path and the metadata/data-separated
    ``atomic_md`` path run the same workload, making the per-row
    ``message_bytes`` params a deterministic communication-complexity
    comparison (``repro bench --compare`` joins rows by name+params).
    """
    sizes = [4] if quick else [4, 10, 16]
    rows = [_macro_case(n, seed=n, value_size=4096) for n in sizes]
    rows.extend(_macro_case(n, seed=n, value_size=4096,
                            protocol="atomic_md") for n in sizes)
    return rows


def run_lint_benchmarks(quick: bool = False) -> List[BenchRow]:
    """Wall time of the full ``repro lint`` suite over the package.

    Static-analysis cost rides in tier-1 (the lint gate runs every
    rule pack including interprocedural taint flow), so it is tracked
    like any other kernel: one row for a cold full run, one for a
    cache-served run, making both the analysis cost and the
    incremental-cache payoff visible in ``BENCH_*.json`` diffs.
    """
    import tempfile
    from pathlib import Path as _Path

    from repro.lint import run_lint
    from repro.lint.runner import default_target

    target = default_target()
    report = run_lint([target])  # warm the parser-independent imports
    params = {"modules": report.modules_checked,
              "rules": sorted(set(report.rules_run))}
    iterations = 1 if quick else 3
    rows = [_timed("lint.full_suite", params, iterations,
                   lambda: run_lint([target]))]
    with tempfile.TemporaryDirectory() as scratch:
        cache_dir = _Path(scratch)
        run_lint([target], cache_dir=cache_dir)  # populate
        rows.append(_timed("lint.cached_suite", params, iterations,
                           lambda: run_lint([target],
                                            cache_dir=cache_dir)))
    return rows


def compare_rows(baseline: List[Dict[str, Any]],
                 after: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Join two row lists on ``(name, params)`` and compute speedups.

    Rows are matched by name plus the workload-shaping parameters (run
    statistics such as message counts are part of the row but identical
    across matched runs by construction).  Returns one record per match
    with the baseline/after per-iteration times and their ratio.
    """
    _RUN_STATS = {"messages", "message_bytes"}

    def key(row: Dict[str, Any]):
        params = row.get("params", {})
        shaped = {key: value for key, value in sorted(params.items())
                  if key not in _RUN_STATS
                  and not isinstance(value, (list, dict))}
        return (row["name"], tuple(shaped.items()))

    after_by_key = {key(row): row for row in after}
    comparisons = []
    for row in baseline:
        other = after_by_key.get(key(row))
        if other is None:
            continue
        base_us = row["per_iteration_us"]
        after_us = other["per_iteration_us"]
        comparisons.append({
            "name": row["name"],
            "params": row["params"],
            "baseline_us": base_us,
            "after_us": after_us,
            "speedup": (base_us / after_us) if after_us else None,
        })
    return comparisons


def regressions(comparisons: List[Dict[str, Any]],
                tolerance_pct: float) -> List[Dict[str, Any]]:
    """The comparisons whose ``after`` timing regressed beyond the
    tolerance: ``after_us > baseline_us * (1 + tolerance_pct / 100)``.

    Feeds ``repro bench --compare --check``: CI gates on an empty
    return.  Each returned record is the comparison plus its
    ``regression_pct`` (how far past baseline the after timing landed).
    """
    allowed = 1.0 + tolerance_pct / 100.0
    flagged = []
    for record in comparisons:
        base_us = record["baseline_us"]
        after_us = record["after_us"]
        if after_us is None or not base_us:
            continue
        if after_us > base_us * allowed:
            entry = dict(record)
            entry["regression_pct"] = round(
                (after_us / base_us - 1.0) * 100.0, 2)
            flagged.append(entry)
    return flagged
