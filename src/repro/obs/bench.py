"""Machine-readable benchmark emission (``BENCH_*.json``).

The experiments print human-readable tables; performance tracking needs
the same numbers as data.  When a bench directory is configured —
``repro experiments --bench-dir DIR`` or the ``REPRO_BENCH_DIR``
environment variable — :func:`emit_bench` writes each experiment's
structured rows as ``BENCH_<name>.json`` into it; with no directory
configured it is a no-op, so experiments stay dependency- and
side-effect-free by default.

The JSON payload round-trips dataclass rows (via
``dataclasses.asdict``), :class:`~repro.common.ids.PartyId` values
(as their printed names), and byte strings (as length placeholders).
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Any, Optional

from repro.common.ids import PartyId

#: environment variable naming the directory ``BENCH_*.json`` files go to
BENCH_ENV = "REPRO_BENCH_DIR"


def bench_dir() -> Optional[Path]:
    """The configured bench output directory, or ``None`` if benching
    is disabled."""
    configured = os.environ.get(BENCH_ENV, "").strip()
    return Path(configured) if configured else None


def to_jsonable(value: Any) -> Any:
    """Convert experiment payloads (dataclasses, PartyIds, bytes,
    containers) to JSON-serializable structures."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return to_jsonable(dataclasses.asdict(value))
    if isinstance(value, bytes):
        return {"bytes": len(value)}
    if isinstance(value, PartyId):
        return str(value)
    if isinstance(value, dict):
        return {str(key): to_jsonable(item)
                for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def emit_bench(name: str, payload: Any,
               directory: Optional[Path] = None) -> Optional[Path]:
    """Write ``BENCH_<name>.json`` into the bench directory.

    ``directory`` overrides the environment configuration; with neither
    set, nothing is written and ``None`` is returned.  Returns the path
    written otherwise.
    """
    target_dir = directory if directory is not None else bench_dir()
    if target_dir is None:
        return None
    target_dir.mkdir(parents=True, exist_ok=True)
    path = target_dir / f"BENCH_{name}.json"
    document = {"bench": name, "data": to_jsonable(payload)}
    path.write_text(json.dumps(document, indent=2, sort_keys=True)
                    + "\n", encoding="utf-8")
    return path
