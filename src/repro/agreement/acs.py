"""Asynchronous common subset (ACS) — agreeing on a set of proposals.

The Ben-Or–Kelmer–Rabin construction (as in modern BFT systems): every
server reliably broadcasts its proposal; one binary-agreement instance
per server decides whether that proposal makes the cut.  Once ``n − t``
instances have decided 1, the remaining instances are fed 0; the output
is the set of proposals whose instance decided 1 — at least ``n − 2t``
of them from honest servers, identical at every honest server.

This is the consensus core of the atomic-broadcast comparator: the paper
(§3.4) notes register protocols *could* be built by serializing
operations with atomic broadcast; building that stack makes the cost
difference measurable (experiment F13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Set

from repro.agreement.binary import BinaryAgreement
from repro.broadcast.reliable import ReliableBroadcastServer, r_broadcast
from repro.common.ids import PartyId
from repro.config import SystemConfig
from repro.net.process import Process

#: done(session, {server_index: proposal})
OutputCallback = Callable[[Any, Dict[int, Any]], None]


@dataclass
class _Session:
    proposals: Dict[int, Any] = field(default_factory=dict)
    inputs_given: Set[int] = field(default_factory=set)
    decisions: Dict[int, int] = field(default_factory=dict)
    zero_filled: bool = False
    delivered: bool = False


class CommonSubset:
    """Server-side ACS component (multi-session).

    Call :meth:`propose` with a session identifier (any serializable
    value) and this server's proposal; ``done(session, accepted)`` fires
    once with the agreed ``{server_index: proposal}`` map.
    """

    def __init__(self, process: Process, config: SystemConfig,
                 done: OutputCallback):
        self._process = process
        self._config = config
        self._done = done
        self._sessions: Dict[bytes, _Session] = {}
        self._session_ids: Dict[bytes, Any] = {}
        self.rbc = ReliableBroadcastServer(
            process, config, self._on_proposal,
            allow_server_origins=True)
        self.aba = BinaryAgreement(process, config, self._on_decision)
        #: optional hook fired when a session is first seen (own proposal
        #: or a remote one) — lets layers above join rounds they did not
        #: start (e.g. atomic broadcast proposing an empty buffer).
        self.on_first_contact: Optional[Callable[[Any], None]] = None

    # -- public API ---------------------------------------------------------

    def propose(self, session: Any, proposal: Any) -> None:
        """Broadcast this server's proposal for ``session``."""
        r_broadcast(self._process, self._rbc_tag(session), proposal)

    # -- plumbing --------------------------------------------------------------

    @staticmethod
    def _rbc_tag(session: Any) -> str:
        from repro.common.serialization import encode
        return "acs/" + encode(session).hex()

    def _session(self, session: Any) -> _Session:
        from repro.common.serialization import encode
        key = encode(session)
        if key not in self._sessions:
            self._sessions[key] = _Session()
            self._session_ids[key] = session
            if self.on_first_contact is not None:
                self.on_first_contact(session)
        return self._sessions[key]

    def _aba_id(self, session: Any, index: int):
        return ("acs", session, index)

    # -- event handlers -----------------------------------------------------------

    def _on_proposal(self, tag: str, origin: PartyId, value: Any) -> None:
        if not tag.startswith("acs/") or not origin.is_server:
            return
        from repro.common.serialization import encode
        key = bytes.fromhex(tag[len("acs/"):])
        session = self._session_ids.get(key)
        if session is None:
            # First contact with this session through someone's proposal.
            try:
                from repro.common.serialization import decode
                session = decode(key)
            except Exception:
                return
        state = self._session(session)
        state.proposals[origin.index] = value
        # A delivered proposal is a vote for inclusion.
        if origin.index not in state.inputs_given:
            state.inputs_given.add(origin.index)
            self.aba.provide_input(self._aba_id(session, origin.index), 1)
        self._progress(session, state)

    def _on_decision(self, instance_id: Any, value: int) -> None:
        if not (isinstance(instance_id, tuple) and len(instance_id) == 3
                and instance_id[0] == "acs"):
            return
        _, session, index = instance_id
        state = self._session(session)
        state.decisions[index] = value
        self._progress(session, state)

    # -- state machine -----------------------------------------------------------

    def _progress(self, session: Any, state: _Session) -> None:
        config = self._config
        ones = sum(1 for value in state.decisions.values() if value == 1)
        if ones >= config.quorum and not state.zero_filled:
            # Enough proposals are in: refuse the stragglers so every
            # instance terminates.
            state.zero_filled = True
            for index in range(1, config.n + 1):
                if index not in state.inputs_given:
                    state.inputs_given.add(index)
                    self.aba.provide_input(self._aba_id(session, index), 0)
        if state.delivered or len(state.decisions) < config.n:
            return
        accepted_indices = sorted(
            index for index, value in state.decisions.items()
            if value == 1)
        # Output only once every accepted proposal has been delivered by
        # its broadcast (RBC agreement guarantees it eventually is).
        if any(index not in state.proposals
               for index in accepted_indices):
            return
        state.delivered = True
        accepted = {index: state.proposals[index]
                    for index in accepted_indices}
        self._done(session, accepted)
