"""Threshold common coin (Cachin–Kursawe–Shoup style).

Randomized asynchronous agreement needs a source of shared, unpredictable
randomness.  The classic construction builds it from the same
non-interactive threshold signature scheme AtomicNS already deploys: the
coin for ``(tag, round)`` is a bit of the hash of the unique threshold
signature on that name.  No party can predict it before ``t + 1`` servers
release their shares, all parties compute the same value, and it costs
one message round.

This powers the binary-agreement substrate of the atomic-broadcast
comparator (the alternative register construction Section 3.4 mentions:
"atomic broadcast from the clients to the servers to serialize the
operations").
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

from repro.common.ids import PartyId
from repro.config import SystemConfig
from repro.crypto.hashing import hash_bytes
from repro.crypto.threshold import SignatureShare
from repro.net.message import Message
from repro.net.process import Process

MSG_COIN_SHARE = "coin-share"

#: ready(name, value) — fired once per coin name with the coin bit.
CoinCallback = Callable[[Tuple, int], None]


class CommonCoin:
    """Server-side common-coin component.

    Call :meth:`flip` with a hashable, serializable *name* (e.g.
    ``(tag, round)``); once ``t + 1`` valid shares for that name arrived,
    ``ready(name, bit)`` fires.  Flipping is idempotent, and shares
    arriving before the local flip are buffered by the inbox.
    """

    def __init__(self, process: Process, config: SystemConfig,
                 ready: CoinCallback):
        self._process = process
        self._config = config
        self._ready = ready
        self._flipped: Dict[bytes, bool] = {}
        self._done: Dict[bytes, int] = {}
        process.on(MSG_COIN_SHARE, self._on_share)

    @staticmethod
    def _signing_name(name: Tuple) -> Tuple:
        return ("common-coin", name)

    def flip(self, name: Tuple) -> None:
        """Release this server's coin share for ``name``."""
        from repro.common.serialization import encode
        key = encode(name)
        if self._flipped.get(key):
            return
        self._flipped[key] = True
        scheme = self._config.threshold_scheme
        share = scheme.sign(self._signing_name(name),
                            self._process.pid.index)
        self._process.send_to_servers("coin", MSG_COIN_SHARE, name, share)
        self._process.start_thread(self._collect(name, key))

    def _collect(self, name: Tuple, key: bytes):
        scheme = self._config.threshold_scheme
        signing_name = self._signing_name(name)
        memo: Dict[int, bool] = {}

        def valid(message: Message) -> bool:
            cached = memo.get(message.msg_id)
            if cached is None:
                payload = message.payload
                cached = (message.sender.is_server
                          and len(payload) == 2
                          and payload[0] == name
                          and isinstance(payload[1], SignatureShare)
                          and payload[1].signer == message.sender.index
                          and scheme.verify_share(signing_name,
                                                  payload[1]))
                memo[message.msg_id] = cached
            return cached

        shares = yield self._process.condition_quorum(
            "coin", MSG_COIN_SHARE, self._config.t + 1, where=valid)
        if key in self._done:
            return
        signature = scheme.combine(
            signing_name, [message.payload[1] for message in shares])
        bit = hash_bytes(signature.value)[0] & 1
        self._done[key] = bit
        self._ready(name, bit)

    def _on_share(self, message: Message) -> None:
        """Join a flip another server started (shares arriving for a name
        we have not flipped yet trigger our own share release, so every
        honest server's flip completes)."""
        if len(message.payload) != 2 or not message.sender.is_server:
            return
        self.flip(message.payload[0])

    def value(self, name: Tuple):
        """The coin bit, or ``None`` if not yet determined locally."""
        from repro.common.serialization import encode
        return self._done.get(encode(name))
