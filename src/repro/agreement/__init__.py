"""Randomized asynchronous agreement stack (the §3.4 alternative).

Threshold common coin → binary Byzantine agreement → asynchronous common
subset → atomic broadcast: the machinery needed to build registers by
serializing operations, implemented to make the paper's design choice
(registers *without* consensus) measurable — see experiment F13 and
``repro.baselines.abc_register``.
"""

from repro.agreement.acs import CommonSubset
from repro.agreement.atomic_broadcast import AtomicBroadcast
from repro.agreement.binary import BinaryAgreement
from repro.agreement.coin import CommonCoin

__all__ = [
    "CommonSubset",
    "AtomicBroadcast",
    "BinaryAgreement",
    "CommonCoin",
]
