"""Asynchronous binary Byzantine agreement (randomized, ``n > 3t``).

The Mostéfaoui–Raynal–style signature-free protocol driven by the
threshold common coin: rounds of binary-value broadcast (``BVAL`` with
``t + 1`` relay and ``2t + 1`` acceptance), an ``AUX`` exchange that
establishes a set ``V`` of candidate values backed by ``n - t`` servers,
then the coin — a singleton ``V = {v}`` decides when ``v`` equals the
coin, otherwise the coin seeds the next round's estimate.  Expected O(1)
rounds; FLP is circumvented by randomization.

Termination uses the standard ``FINISH`` gadget: deciders announce their
value but keep participating; ``t + 1`` matching announcements let
stragglers adopt the decision, and ``2t + 1`` halt the instance — so a
decided server never strands the others mid-round.

Safety sketch: two different values cannot both gather ``2t + 1`` BVAL
support *and* ``n − t`` AUX backing in a deciding round with the same
coin value; once some honest server decides ``v`` in round ``r``, every
honest estimate entering round ``r + 1`` is ``v``, after which only
``v`` can ever be decided.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.agreement.coin import CommonCoin
from repro.common.ids import PartyId
from repro.common.serialization import encode
from repro.config import SystemConfig
from repro.net.message import Message
from repro.net.process import Process

MSG_BVAL = "aba-bval"
MSG_AUX = "aba-aux"
MSG_FINISH = "aba-finish"

#: decided(instance_id, value) — fired exactly once per instance.
DecideCallback = Callable[[Any, int], None]

_HALT = "halt"


@dataclass
class _Round:
    bval_sent: Set[int] = field(default_factory=set)
    bval_senders: Dict[int, Set[PartyId]] = field(default_factory=dict)
    bin_values: Set[int] = field(default_factory=set)
    aux_sent: bool = False
    aux_values: Dict[PartyId, int] = field(default_factory=dict)


@dataclass
class _Instance:
    input: Optional[int] = None
    started: bool = False
    decided: Optional[int] = None
    finish_sent: bool = False
    halted: bool = False
    reported: bool = False
    finish_senders: Dict[int, Set[PartyId]] = field(default_factory=dict)
    rounds: Dict[int, _Round] = field(default_factory=dict)

    def round(self, r: int) -> _Round:
        if r not in self.rounds:
            self.rounds[r] = _Round()
        return self.rounds[r]


class BinaryAgreement:
    """Server-side component running any number of agreement instances.

    Call :meth:`provide_input` with the instance identifier (any
    serializable value) and this server's proposal bit; ``decided`` fires
    once per instance with the agreed bit.  Validity: the decision is some
    honest server's input.
    """

    def __init__(self, process: Process, config: SystemConfig,
                 decided: DecideCallback,
                 coin: Optional[CommonCoin] = None):
        self._process = process
        self._config = config
        self._decided_cb = decided
        self.coin = coin or CommonCoin(process, config,
                                       lambda name, bit: None)
        self._instances: Dict[bytes, _Instance] = {}
        self._ids: Dict[bytes, Any] = {}
        process.on(MSG_BVAL, self._on_bval)
        process.on(MSG_AUX, self._on_aux)
        process.on(MSG_FINISH, self._on_finish)

    # -- public API -------------------------------------------------------

    def provide_input(self, instance_id: Any, value: int) -> None:
        """Propose ``value`` (0/1) for ``instance_id``; idempotent."""
        instance = self._instance(instance_id)
        if instance.input is None and value in (0, 1):
            instance.input = value
            self._maybe_start(instance_id, instance)

    def decision(self, instance_id: Any) -> Optional[int]:
        """The decided bit, or ``None`` while undecided."""
        return self._instance(instance_id).decided

    # -- plumbing -----------------------------------------------------------

    def _instance(self, instance_id: Any) -> _Instance:
        key = encode(instance_id)
        if key not in self._instances:
            self._instances[key] = _Instance()
            self._ids[key] = instance_id
        return self._instances[key]

    def _maybe_start(self, instance_id: Any, instance: _Instance) -> None:
        if instance.started or instance.input is None or instance.halted:
            return
        instance.started = True
        self._process.start_thread(self._run(instance_id, instance))

    def _broadcast(self, mtype: str, instance_id: Any, *rest: Any) -> None:
        self._process.send_to_servers("aba", mtype, instance_id, *rest)

    # -- handlers -------------------------------------------------------------

    def _parse(self, message: Message, arity: int):
        if not message.sender.is_server or len(message.payload) != arity:
            return None
        return message.payload

    def _on_bval(self, message: Message) -> None:
        payload = self._parse(message, 3)
        if payload is None:
            return
        instance_id, r, value = payload
        if value not in (0, 1) or not isinstance(r, int) or r < 1:
            return
        instance = self._instance(instance_id)
        if instance.halted:
            return
        round_state = instance.round(r)
        senders = round_state.bval_senders.setdefault(value, set())
        senders.add(message.sender)
        config = self._config
        if len(senders) >= config.t + 1 and \
                value not in round_state.bval_sent:
            # Relay: a value t+1 servers vouch for came from some honest
            # server, so it is safe (and necessary) to amplify.
            round_state.bval_sent.add(value)
            self._broadcast(MSG_BVAL, instance_id, r, value)
        if len(senders) >= 2 * config.t + 1:
            round_state.bin_values.add(value)
        # bin_values growth may unblock the instance thread (pumped by
        # the process after this handler returns).

    def _on_aux(self, message: Message) -> None:
        payload = self._parse(message, 3)
        if payload is None:
            return
        instance_id, r, value = payload
        if value not in (0, 1) or not isinstance(r, int) or r < 1:
            return
        instance = self._instance(instance_id)
        if instance.halted:
            return
        instance.round(r).aux_values.setdefault(message.sender, value)

    def _on_finish(self, message: Message) -> None:
        payload = self._parse(message, 2)
        if payload is None:
            return
        instance_id, value = payload
        if value not in (0, 1):
            return
        instance = self._instance(instance_id)
        if instance.halted:
            return
        senders = instance.finish_senders.setdefault(value, set())
        senders.add(message.sender)
        config = self._config
        if len(senders) >= config.t + 1 and not instance.finish_sent:
            # Adopt: at least one honest server decided this value.
            instance.finish_sent = True
            instance.decided = value if instance.decided is None \
                else instance.decided
            self._broadcast(MSG_FINISH, instance_id, value)
        if len(senders) >= 2 * config.t + 1:
            instance.halted = True
            self._report(instance_id, instance, value)

    def _report(self, instance_id: Any, instance: _Instance,
                value: int) -> None:
        if instance.reported:
            return
        instance.reported = True
        instance.decided = value
        self._decided_cb(instance_id, value)

    # -- the per-instance protocol thread --------------------------------------

    def _run(self, instance_id: Any, instance: _Instance):
        config = self._config
        estimate = instance.input
        r = 0
        while not instance.halted:
            r += 1
            round_state = instance.round(r)
            if estimate not in round_state.bval_sent:
                round_state.bval_sent.add(estimate)
                self._broadcast(MSG_BVAL, instance_id, r, estimate)

            outcome = yield self._until(
                instance, lambda: bool(round_state.bin_values))
            if outcome == _HALT:
                return
            if not round_state.aux_sent:
                round_state.aux_sent = True
                self._broadcast(MSG_AUX, instance_id, r,
                                min(round_state.bin_values))

            def aux_coverage():
                """n - t AUX values, every one of them in bin_values."""
                covered = [value for value
                           in round_state.aux_values.values()
                           if value in round_state.bin_values]
                if len(covered) >= config.quorum:
                    return set(covered)
                return None

            candidates = yield self._until(instance, aux_coverage)
            if candidates == _HALT:
                return

            coin_name = ("aba", instance_id, r)
            self.coin.flip(coin_name)
            coin = yield self._until(
                instance,
                lambda: (self.coin.value(coin_name) is not None
                         and (self.coin.value(coin_name),)))
            if coin == _HALT:
                return
            coin_bit = coin[0]

            if len(candidates) == 1:
                (value,) = candidates
                if value == coin_bit and instance.decided is None:
                    instance.decided = value
                    if not instance.finish_sent:
                        instance.finish_sent = True
                        self._broadcast(MSG_FINISH, instance_id, value)
                estimate = value
            else:
                estimate = coin_bit
            # Deciders keep looping (est = decided value) so undecided
            # servers can finish their rounds; FINISH halts everyone.

    @staticmethod
    def _until(instance: _Instance, condition: Callable[[], Any]):
        """A wait condition that also wakes on instance halt."""

        def check():
            if instance.halted:
                return _HALT
            return condition()

        return check
