"""Atomic broadcast: a total order on requests via rounds of ACS.

Servers buffer submitted requests; each round, every server proposes its
buffer, the common-subset protocol agrees on which proposals count, and
the union of accepted proposals is delivered in a deterministic order
(deduplicated across rounds).  All honest servers deliver the same
requests in the same sequence — the primitive that can serialize *any*
shared object, registers included (paper §3.4's alternative approach).

Liveness: a request submitted to ``n − t`` honest servers appears in
their proposals from the next round on; since every round's output
contains at least ``n − 2t ≥ t + 1`` honest proposals, the request is
delivered within a round or two.  Round ``R + 1`` opens when ``R``
completes locally (or when another server's round-``R + 1`` proposal
arrives first — late servers join by proposing their current buffer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set

from repro.agreement.acs import CommonSubset
from repro.common.serialization import encode
from repro.config import SystemConfig
from repro.net.process import Process

#: deliver(sequence_number, request) — in identical order everywhere.
DeliverCallback = Callable[[int, Any], None]


class AtomicBroadcast:
    """Server-side atomic-broadcast component.

    :meth:`submit` enqueues a request (any serializable value); requests
    are delivered through ``deliver(seq, request)`` in the same total
    order at every honest server, exactly once each.
    """

    def __init__(self, process: Process, config: SystemConfig,
                 deliver: DeliverCallback):
        self._process = process
        self._config = config
        self._deliver = deliver
        self._buffer: List[Any] = []
        self._buffered_keys: Set[bytes] = set()
        self._delivered_keys: Set[bytes] = set()
        self._proposed_rounds: Set[int] = set()
        self._outputs: Dict[int, Dict[int, Any]] = {}
        self._next_round_to_deliver = 1
        self._next_sequence = 0
        self.acs = CommonSubset(process, config, self._on_acs_done)
        # Join rounds other servers started even with an empty buffer.
        self.acs.on_first_contact = self._on_first_contact

    # -- public API ----------------------------------------------------------

    def submit(self, request: Any) -> None:
        """Enqueue a request for total ordering (idempotent per value)."""
        key = encode(request)
        if key in self._delivered_keys or key in self._buffered_keys:
            return
        self._buffer.append(request)
        self._buffered_keys.add(key)
        self._maybe_propose(self._next_round_to_deliver)

    @property
    def delivered_count(self) -> int:
        return self._next_sequence

    # -- round management -------------------------------------------------------

    def _maybe_propose(self, round_no: int) -> None:
        if round_no in self._proposed_rounds:
            return
        if round_no != self._next_round_to_deliver:
            return  # never run ahead of our own delivery cursor
        self._proposed_rounds.add(round_no)
        self.acs.propose(("abc", round_no), list(self._buffer))

    def _on_first_contact(self, session: Any) -> None:
        if isinstance(session, tuple) and len(session) == 2 \
                and session[0] == "abc" and isinstance(session[1], int):
            self._maybe_propose(session[1])

    def _on_acs_done(self, session: Any, accepted: Dict[int, Any]) -> None:
        if not (isinstance(session, tuple) and len(session) == 2
                and session[0] == "abc"):
            return
        self._outputs[session[1]] = accepted
        self._drain()

    def _drain(self) -> None:
        while self._next_round_to_deliver in self._outputs:
            accepted = self._outputs.pop(self._next_round_to_deliver)
            requests: Dict[bytes, Any] = {}
            for proposal in accepted.values():
                if not isinstance(proposal, list):
                    continue  # malformed Byzantine proposal: skip it
                for request in proposal:
                    requests.setdefault(encode(request), request)
            for key in sorted(requests):
                if key in self._delivered_keys:
                    continue
                self._delivered_keys.add(key)
                if key in self._buffered_keys:
                    self._buffered_keys.discard(key)
                    self._buffer = [item for item in self._buffer
                                    if encode(item) != key]
                self._next_sequence += 1
                self._deliver(self._next_sequence, requests[key])
            self._next_round_to_deliver += 1
            if self._buffer:
                self._maybe_propose(self._next_round_to_deliver)
