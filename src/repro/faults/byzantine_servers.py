"""Byzantine server behaviours.

Corrupted servers run arbitrary code but hold only their own key material
and channels — modeled here as subclasses of the honest server classes (a
corrupted party starts from the honest code and deviates).  Up to ``t`` of
these can be injected into a cluster via ``server_overrides``; Theorem 2
says every experiment below must leave liveness and atomicity intact.
"""

from __future__ import annotations

import random
from typing import Any, Tuple

from repro.baselines.martin import MartinServer
from repro.common.ids import PartyId
from repro.config import SystemConfig
from repro.core.atomic import MSG_VALUE, AtomicServer, _RegisterState
from repro.core.atomic_md import (
    MSG_BLOCK,
    MSG_BLOCK_MISS,
    MSG_VALID,
    AtomicMdServer,
)
from repro.core.atomic_ns import AtomicNSServer
from repro.core.timestamps import INITIAL_TIMESTAMP, Timestamp
from repro.net.message import Message
from repro.net.process import Process

#: Timestamp offset used by inflation attacks (far beyond any write count).
INFLATION = 10 ** 12


class CrashServer(Process):
    """A server that is silent from the start (crash/omission faults are a
    special case of Byzantine faults)."""

    def __init__(self, pid: PartyId, config: SystemConfig,
                 initial_value: bytes = b""):
        super().__init__(pid)
        self.config = config

    def receive(self, message: Message) -> None:
        self.inbox.add(message)  # reads its buffer, does nothing


class InflatorServer(AtomicServer):
    """Protocol Atomic server that reports absurdly large timestamps.

    Against Protocol Atomic this *succeeds* in making honest writers skip
    timestamp values (the attack motivating Section 3.4): the writer takes
    the maximum of its replies and one lying server controls the maximum.
    """

    def _ts_reply(self, state: _RegisterState) -> Tuple[Any, ...]:
        return (state.timestamp.ts + INFLATION,)


class InflatorNSServer(AtomicNSServer):
    """Protocol AtomicNS server attempting the same inflation.

    It cannot forge a threshold signature on the inflated value, so it
    replays its stored signature — which verifies only for the stored
    timestamp, so honest writers discard the reply and non-skipping holds.
    """

    def _ts_reply(self, state: _RegisterState) -> Tuple[Any, ...]:
        return (state.timestamp.ts + INFLATION, state.signature)


class MartinInflatorServer(MartinServer):
    """SBQ-L server reporting inflated timestamps (always succeeds —
    there is no authentication to stop it)."""

    def _on_get_ts(self, message: Message) -> None:
        if len(message.payload) != 1:
            return
        (oid,) = message.payload
        state = self.register_state(message.tag)
        self.send(message.sender, message.tag, "ts", oid,
                  state.timestamp.ts + INFLATION)


class EquivocatingReaderServer(AtomicServer):
    """Serves garbage ``value`` messages to readers: corrupted blocks under
    the real commitment and fabricated commitments with huge timestamps.

    Readers must discard both (block validation, quorum grouping); reads
    terminate via the ``n - t`` honest servers.
    """

    def _on_read(self, message: Message) -> None:
        if len(message.payload) != 1:
            return
        (oid,) = message.payload
        state = self.register_state(message.tag)
        corrupted = bytes(byte ^ 0xFF for byte in state.block) or b"\x00"
        self.send(message.sender, message.tag, MSG_VALUE, oid,
                  state.commitment, corrupted, state.witness,
                  state.timestamp)
        bogus = Timestamp(state.timestamp.ts + INFLATION, "bogus")
        self.send(message.sender, message.tag, MSG_VALUE, oid,
                  state.commitment, state.block, state.witness, bogus)


class StaleReaderServer(AtomicServer):
    """Answers reads with the initial value forever (stale replies).

    A single stale server cannot form a quorum group, so readers still
    return fresh values."""

    def _on_read(self, message: Message) -> None:
        if len(message.payload) != 1:
            return
        (oid,) = message.payload
        state = self.register_state(message.tag)
        if not state.listeners.add(oid, state.timestamp, message.sender):
            return
        # Reply with whatever this server held at initialization.
        blocks = self.config.coder.encode(b"")
        commitment, witnesses = self.config.commitment_scheme.commit(blocks)
        index = self.pid.index
        self.send(message.sender, message.tag, MSG_VALUE, oid, commitment,
                  blocks[index - 1], witnesses[index - 1],
                  INITIAL_TIMESTAMP)


class CorruptBlockMdServer(AtomicMdServer):
    """AtomicMd server whose data plane serves corrupted blocks.

    Metadata behaviour stays honest (it joins quorums and keeps reads
    live), but every ``md-get-block`` answer flips the block's bytes, so
    the reader's verification against the quorum-agreed cross-checksum
    fails and the read must escalate to another agreeing server.  With
    ``k <= n - 2t`` honest servers inside every agreeing quorum, reads
    still terminate with the correct value.
    """

    def _on_get_block(self, message: Message) -> None:
        if len(message.payload) != 2:
            return
        oid, timestamp = message.payload
        if not isinstance(oid, str) or not isinstance(timestamp, Timestamp):
            return
        state = self.register_state(message.tag)
        entry = state.history.get(timestamp)
        if entry is None:
            self.send(message.sender, message.tag, MSG_BLOCK_MISS, oid,
                      timestamp)
            return
        _, block, witness = entry
        corrupted = bytes(byte ^ 0xFF for byte in block) or b"\x00"
        self.send(message.sender, message.tag, MSG_BLOCK, oid, timestamp,
                  corrupted, witness)


class MissingBlockMdServer(AtomicMdServer):
    """AtomicMd server that claims every block was evicted.

    Pure omission on the data plane: each ``md-get-block`` is answered
    with ``md-block-miss``, exercising the reader's miss-triggered
    escalation path rather than the verification-failure path.
    """

    def _on_get_block(self, message: Message) -> None:
        if len(message.payload) != 2:
            return
        oid, timestamp = message.payload
        if not isinstance(oid, str) or not isinstance(timestamp, Timestamp):
            return
        self.send(message.sender, message.tag, MSG_BLOCK_MISS, oid,
                  timestamp)


class StaleMetadataMdServer(AtomicMdServer):
    """AtomicMd server answering revalidation probes with the initial
    TIMESTAMP forever (stale metadata).

    It cannot make a session serve a stale cache entry: revalidation
    succeeds only when the *maximum* over ``n - t`` replies equals the
    cached TIMESTAMP, and any such quorum shares an honest server with
    the metadata quorum of every completed write — the honest reply
    keeps the maximum at the true freshness, so one understating liar
    changes nothing.  Nor can it stall revalidation: the quorum fills
    from the ``n - t`` honest servers with or without it.
    """

    def _on_validate(self, message: Message) -> None:
        if len(message.payload) != 1:
            return
        (oid,) = message.payload
        if not isinstance(oid, str):
            return
        self.send(message.sender, message.tag, MSG_VALID, oid,
                  INITIAL_TIMESTAMP)


class ForgedMetadataMdServer(AtomicMdServer):
    """AtomicMd server forging an inflated TIMESTAMP at revalidation.

    The lie *raises* the quorum maximum above the cached TIMESTAMP, so
    every revalidation round it participates in reports a mismatch and
    the session falls back to a full protocol read — which the honest
    quorum answers correctly.  Safety is untouched; the attack can only
    tax performance by making the cache useless, never serve a wrong
    value (the forged TIMESTAMP names no decodable version).
    """

    def _on_validate(self, message: Message) -> None:
        if len(message.payload) != 1:
            return
        (oid,) = message.payload
        if not isinstance(oid, str):
            return
        state = self.register_state(message.tag)
        forged = Timestamp(state.timestamp.ts + INFLATION, "forged")
        self.send(message.sender, message.tag, MSG_VALID, oid, forged)


#: ``FaultPlan``-selectable Byzantine behaviours for the metadata/data
#: separated protocol (the kv plane's default).  Keys are the names a
#: :class:`repro.chaos.plan.ByzantineSpec` (and ``kv-bench
#: --byzantine``) accepts; values are AtomicMd server subclasses that
#: deviate from the honest code.  Churn campaigns use this registry to
#: sweep malicious — not just crashed — members.
BYZANTINE_BEHAVIOURS = {
    "corrupt-block": CorruptBlockMdServer,
    "missing-block": MissingBlockMdServer,
    "stale-meta": StaleMetadataMdServer,
    "forged-meta": ForgedMetadataMdServer,
}


class AvidSpammerServer(AtomicServer):
    """On top of otherwise-honest behaviour, floods the dispersal substrate
    with invalid echoes and readys for every instance it hears about.

    Tests robustness of the AVID quorum logic: invalid blocks are dropped
    at verification, and ``2t + 1`` readys for a fabricated commitment can
    never be reached with only ``t`` spammers."""

    def __init__(self, pid: PartyId, config: SystemConfig,
                 initial_value: bytes = b""):
        super().__init__(pid, config, initial_value)
        self._rng = random.Random(pid.index)
        self.on("avid-send", self._spam)
        self.on("avid-echo", self._spam)

    def _spam(self, message: Message) -> None:
        garbage = bytes(self._rng.getrandbits(8) for _ in range(8))
        fake_commitment = tuple(
            bytes(self._rng.getrandbits(8) for _ in range(32))
            for _ in range(self.config.n))
        client = message.payload[1] if len(message.payload) > 1 and \
            isinstance(message.payload[1], PartyId) else self.pid
        self.send_to_servers(message.tag, "avid-echo", fake_commitment,
                             client, garbage, None)
        self.send_to_servers(message.tag, "avid-ready", fake_commitment,
                             client, garbage, None)
