"""Byzantine fault library: attack behaviours for servers and clients.

Inject these into clusters via ``build_cluster(..., server_overrides=...,
client_overrides=...)`` to exercise the resilience claims of the paper.
"""

from repro.faults.byzantine_clients import (
    SKIP_TARGET,
    ByzantineClientBase,
    EquivocatingRbcWriter,
    HalfWriter,
    InconsistentDisperser,
    PoisonousGoodsonWriter,
    ReplayingNSWriter,
    SkippingWriter,
    SplitBrainMartinWriter,
)
from repro.faults.failstop import (
    FailStopMartinServer,
    FailStopNSServer,
    FailStopServer,
)
from repro.faults.byzantine_servers import (
    INFLATION,
    AvidSpammerServer,
    CrashServer,
    EquivocatingReaderServer,
    InflatorNSServer,
    InflatorServer,
    MartinInflatorServer,
    StaleReaderServer,
)

__all__ = [
    "SKIP_TARGET",
    "ByzantineClientBase",
    "EquivocatingRbcWriter",
    "HalfWriter",
    "InconsistentDisperser",
    "PoisonousGoodsonWriter",
    "ReplayingNSWriter",
    "SkippingWriter",
    "SplitBrainMartinWriter",
    "FailStopMartinServer",
    "FailStopNSServer",
    "FailStopServer",
    "INFLATION",
    "AvidSpammerServer",
    "CrashServer",
    "EquivocatingReaderServer",
    "InflatorNSServer",
    "InflatorServer",
    "MartinInflatorServer",
    "StaleReaderServer",
]
