"""Fail-stop faults at arbitrary protocol points.

A crash is a special case of a Byzantine fault, but *when* the crash
happens matters: a server that dies between its ``echo`` and its
``ready``, or after signing a share but before forwarding a value to a
listener, exercises completely different recovery paths than one that
was dead from the start.  :class:`FailStopServer` behaves honestly for
its first ``crash_after`` message deliveries and then goes permanently
silent — sweeping ``crash_after`` over a run tests liveness at *every*
crash point (see ``tests/test_failstop.py``).

Two trigger clocks are supported:

* ``"messages"`` (historical default) — the crash point counts this
  server's own deliveries, and recovery counts messages that arrive
  while it is down.
* ``"decisions"`` — both points read the fault injector's
  scheduling-decision counter (``simulator.chaos.decisions``, falling
  back to the logical clock without an injector).  Decisions advance
  globally even while a server receives nothing, so crash/recovery
  windows compose predictably with delay and partition holds that
  starve the crashed server of traffic.
"""

from __future__ import annotations

from repro.baselines.martin import MartinServer
from repro.common.errors import ConfigurationError
from repro.common.ids import PartyId
from repro.config import SystemConfig
from repro.core.atomic import AtomicServer
from repro.core.atomic_md import AtomicMdServer
from repro.core.atomic_ns import AtomicNSServer
from repro.net.message import Message

#: Valid values for the fail-stop trigger clock.
TRIGGERS = ("messages", "decisions")


class _FailStopMixin:
    """Honest behaviour until the trigger clock passes ``crash_after``.

    After the crash point, received messages are still buffered (the
    paper's model always delivers) but never processed, and the parked
    threads never resume — exactly a fail-stop party.

    With ``recover_after`` set, the crash is transient: once the
    recovery point passes (``recover_after`` further messages while
    down, or scheduling decisions with ``trigger="decisions"``), the
    server comes back up and replays the buffered backlog through
    normal processing — state is process-local, so recovery resumes
    from the pre-crash state plus everything delivered in the meantime
    (a reboot, not an amnesiac replacement).  The chaos plane's
    ``crash-recover`` plans are built on this; ``recover_after=None``
    keeps the historical permanently-crashed behaviour.
    """

    def _init_failstop(self, crash_after: int,
                       recover_after=None,
                       trigger: str = "messages") -> None:
        if trigger not in TRIGGERS:
            raise ConfigurationError(
                f"unknown fail-stop trigger {trigger!r}; "
                f"choose from {TRIGGERS}")
        self._crash_after = crash_after
        self._recover_after = recover_after
        self._trigger = trigger
        self._delivered = 0
        self._recovered = False
        self._down_buffer = []

    def _decision_clock(self) -> int:
        """The global trigger clock for ``trigger="decisions"``."""
        simulator = getattr(self, "simulator", None)
        if simulator is None:
            return 0
        chaos = getattr(simulator, "chaos", None)
        if chaos is not None:
            return chaos.decisions
        return simulator.time

    @property
    def crashed(self) -> bool:
        if self._recovered:
            return False
        if self._trigger == "decisions":
            return self._decision_clock() >= self._crash_after
        return self._delivered >= self._crash_after

    @property
    def recovered(self) -> bool:
        """Whether a transient crash has already healed."""
        return self._recovered

    def _recovery_due(self) -> bool:
        if self._trigger == "decisions":
            return (self._decision_clock()
                    >= self._crash_after + self._recover_after)
        return len(self._down_buffer) >= self._recover_after

    def receive(self, message: Message) -> None:  # type: ignore[override]
        if self.crashed:
            if self._recover_after is None:
                self.inbox.add(message)
                return
            self._down_buffer.append(message)
            if self._recovery_due():
                self._recovered = True
                backlog, self._down_buffer = self._down_buffer, []
                for held in backlog:
                    self._delivered += 1
                    super().receive(held)
            return
        self._delivered += 1
        super().receive(message)


class FailStopServer(_FailStopMixin, AtomicServer):
    """Protocol Atomic server that crashes after N deliveries."""

    def __init__(self, pid: PartyId, config: SystemConfig,
                 initial_value: bytes = b"", crash_after: int = 0,
                 recover_after=None, trigger: str = "messages"):
        super().__init__(pid, config, initial_value)
        self._init_failstop(crash_after, recover_after=recover_after,
                            trigger=trigger)


class FailStopNSServer(_FailStopMixin, AtomicNSServer):
    """Protocol AtomicNS server that crashes after N deliveries."""

    def __init__(self, pid: PartyId, config: SystemConfig,
                 initial_value: bytes = b"", crash_after: int = 0,
                 recover_after=None, trigger: str = "messages"):
        super().__init__(pid, config, initial_value)
        self._init_failstop(crash_after, recover_after=recover_after,
                            trigger=trigger)


class FailStopMdServer(_FailStopMixin, AtomicMdServer):
    """Protocol AtomicMd server that crashes after N deliveries.

    Crashing an AtomicMd server downs both of its planes at once: it
    stops joining metadata quorums *and* stops serving blocks, so
    readers that had counted it among their ``k`` data-plane targets
    must escalate to another agreeing server.
    """

    def __init__(self, pid: PartyId, config: SystemConfig,
                 initial_value: bytes = b"", crash_after: int = 0,
                 recover_after=None, trigger: str = "messages"):
        super().__init__(pid, config, initial_value)
        self._init_failstop(crash_after, recover_after=recover_after,
                            trigger=trigger)


class FailStopMartinServer(_FailStopMixin, MartinServer):
    """SBQ-L server that crashes after N deliveries."""

    def __init__(self, pid: PartyId, config: SystemConfig,
                 initial_value: bytes = b"", crash_after: int = 0,
                 recover_after=None, trigger: str = "messages"):
        super().__init__(pid, config, initial_value)
        self._init_failstop(crash_after, recover_after=recover_after,
                            trigger=trigger)
