"""Fail-stop faults at arbitrary protocol points.

A crash is a special case of a Byzantine fault, but *when* the crash
happens matters: a server that dies between its ``echo`` and its
``ready``, or after signing a share but before forwarding a value to a
listener, exercises completely different recovery paths than one that
was dead from the start.  :class:`FailStopServer` behaves honestly for
its first ``crash_after`` message deliveries and then goes permanently
silent — sweeping ``crash_after`` over a run tests liveness at *every*
crash point (see ``tests/test_failstop.py``).
"""

from __future__ import annotations

from repro.baselines.martin import MartinServer
from repro.common.ids import PartyId
from repro.config import SystemConfig
from repro.core.atomic import AtomicServer
from repro.core.atomic_ns import AtomicNSServer
from repro.net.message import Message


class _FailStopMixin:
    """Honest behaviour for ``crash_after`` deliveries, then silence.

    After the crash point, received messages are still buffered (the
    paper's model always delivers) but never processed, and the parked
    threads never resume — exactly a fail-stop party.

    With ``recover_after`` set, the crash is transient: after that many
    further messages have reached the server while it is down, it comes
    back up and replays the buffered backlog through normal processing
    — state is process-local, so recovery resumes from the pre-crash
    state plus everything delivered in the meantime (a reboot, not an
    amnesiac replacement).  The chaos plane's ``crash-recover`` plans
    are built on this; ``recover_after=None`` keeps the historical
    permanently-crashed behaviour.
    """

    def _init_failstop(self, crash_after: int,
                       recover_after=None) -> None:
        self._crash_after = crash_after
        self._recover_after = recover_after
        self._delivered = 0
        self._recovered = False
        self._down_buffer = []

    @property
    def crashed(self) -> bool:
        return (not self._recovered
                and self._delivered >= self._crash_after)

    @property
    def recovered(self) -> bool:
        """Whether a transient crash has already healed."""
        return self._recovered

    def receive(self, message: Message) -> None:  # type: ignore[override]
        if self.crashed:
            if self._recover_after is None:
                self.inbox.add(message)
                return
            self._down_buffer.append(message)
            if len(self._down_buffer) >= self._recover_after:
                self._recovered = True
                backlog, self._down_buffer = self._down_buffer, []
                for held in backlog:
                    self._delivered += 1
                    super().receive(held)
            return
        self._delivered += 1
        super().receive(message)


class FailStopServer(_FailStopMixin, AtomicServer):
    """Protocol Atomic server that crashes after N deliveries."""

    def __init__(self, pid: PartyId, config: SystemConfig,
                 initial_value: bytes = b"", crash_after: int = 0,
                 recover_after=None):
        super().__init__(pid, config, initial_value)
        self._init_failstop(crash_after, recover_after=recover_after)


class FailStopNSServer(_FailStopMixin, AtomicNSServer):
    """Protocol AtomicNS server that crashes after N deliveries."""

    def __init__(self, pid: PartyId, config: SystemConfig,
                 initial_value: bytes = b"", crash_after: int = 0,
                 recover_after=None):
        super().__init__(pid, config, initial_value)
        self._init_failstop(crash_after, recover_after=recover_after)


class FailStopMartinServer(_FailStopMixin, MartinServer):
    """SBQ-L server that crashes after N deliveries."""

    def __init__(self, pid: PartyId, config: SystemConfig,
                 initial_value: bytes = b"", crash_after: int = 0,
                 recover_after=None):
        super().__init__(pid, config, initial_value)
        self._init_failstop(crash_after, recover_after=recover_after)
