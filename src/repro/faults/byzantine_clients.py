"""Byzantine client behaviours.

The paper tolerates an *arbitrary number* of corrupted clients colluding
with corrupted servers.  These classes implement the concrete attacks the
paper discusses; harnesses call their ``attack_*`` methods (a Byzantine
client is driven by the adversary, not by input actions) and then check
that honest clients' views stay atomic, live, and — for AtomicNS — that
timestamps stay non-skipping.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.avid.disperse import MSG_SEND as AVID_SEND
from repro.avid.disperse import disperse
from repro.baselines.goodson import _cross_checksum
from repro.broadcast.reliable import r_broadcast
from repro.common.ids import PartyId
from repro.config import SystemConfig
from repro.core.atomic import AtomicClient, disp_tag, rbc_tag
from repro.core.atomic_ns import AtomicNSClient
from repro.core.timestamps import Timestamp
from repro.crypto.hashing import hash_bytes
from repro.erasure.coder import ErasureCoder
from repro.net.process import Process

#: Timestamp value a skipping writer tries to jump to.
SKIP_TARGET = 10 ** 12


class ByzantineClientBase(Process):
    """Common plumbing: a corrupted client with raw channel access."""

    def __init__(self, pid: PartyId, config: SystemConfig):
        super().__init__(pid)
        self.config = config


class SkippingWriter(ByzantineClientBase):
    """Writes a (consistent) value but broadcasts an enormous timestamp.

    Against Protocol Atomic the write takes effect with timestamp
    ``SKIP_TARGET + 1`` — timestamps skip.  Against Protocol AtomicNS the
    client cannot produce a valid threshold signature on ``SKIP_TARGET``,
    so no honest server ever accepts the write.
    """

    def attack_write(self, tag: str, oid: str, value: bytes,
                     forged_signature: Any = None) -> None:
        """Mount the skipping write: disperse ``value``, broadcast the huge timestamp (with ``forged_signature`` in the AtomicNS format)."""
        disperse(self, disp_tag(tag, oid), value, self.config)
        if forged_signature is None:
            broadcast_value: Any = SKIP_TARGET  # Protocol Atomic format
        else:
            broadcast_value = (SKIP_TARGET, forged_signature)
        r_broadcast(self, rbc_tag(tag, oid), broadcast_value)


class ReplayingNSWriter(ByzantineClientBase):
    """The strongest timestamp attack available against AtomicNS: replay a
    *valid* ``[ts, σ]`` pair observed earlier.  The accepted timestamp is
    then ``ts + 1 <=`` (number of writes so far) ``+ 1`` — non-skipping by
    Lemma 7."""

    def attack_write(self, tag: str, oid: str, value: bytes, ts: int,
                     signature: Any) -> None:
        """Replay a previously observed valid ``[ts, signature]`` pair with a fresh dispersal."""
        disperse(self, disp_tag(tag, oid), value, self.config)
        r_broadcast(self, rbc_tag(tag, oid), (ts, signature))


class InconsistentDisperser(ByzantineClientBase):
    """Attempts to store blocks that are *not* the encoding of any value.

    The commitment honestly commits to the garbage blocks (each block
    verifies individually), but the vector fails the servers' decode/
    re-encode consistency check, so no honest server ever sends ``ready``
    — the dispersal never completes and the write never takes effect.
    This is the attack that read-time-validation designs (Goodson et al.)
    pay for at every subsequent read.
    """

    def attack_write(self, tag: str, oid: str, values: Sequence[bytes],
                     ts: int = 0) -> None:
        """Mix the encodings of several values: server ``j`` gets block
        ``j`` of ``values[j % len(values)]``."""
        coder = self.config.coder
        encodings = [coder.encode(value) for value in values]
        blocks = [encodings[j % len(encodings)][j]
                  for j in range(self.config.n)]
        commitment, witnesses = self.config.commitment_scheme.commit(blocks)
        instance = disp_tag(tag, oid)
        for index, server in enumerate(self.simulator.server_pids, start=1):
            self.send(server, instance, AVID_SEND, commitment,
                      blocks[index - 1], witnesses[index - 1])
        r_broadcast(self, rbc_tag(tag, oid), ts)


class HalfWriter(ByzantineClientBase):
    """Sends the dispersal to only ``count`` servers (default ``t + 1``)
    while broadcasting the timestamp properly.

    If no honest server completes, the write simply never takes effect; if
    one does, AVID agreement guarantees all honest servers eventually
    complete, so reads never block on a half-written value.
    """

    def attack_write(self, tag: str, oid: str, value: bytes, ts: int = 0,
                     count: Optional[int] = None) -> None:
        """Disperse ``value`` to only the first ``count`` servers while broadcasting ``ts`` to all."""
        coder = self.config.coder
        blocks = coder.encode(value)
        commitment, witnesses = self.config.commitment_scheme.commit(blocks)
        count = self.config.t + 1 if count is None else count
        instance = disp_tag(tag, oid)
        for index, server in enumerate(self.simulator.server_pids, start=1):
            if index > count:
                break
            self.send(server, instance, AVID_SEND, commitment,
                      blocks[index - 1], witnesses[index - 1])
        r_broadcast(self, rbc_tag(tag, oid), ts)


class EquivocatingRbcWriter(ByzantineClientBase):
    """Sends different timestamps of the same broadcast instance to
    different servers.  Reliable-broadcast agreement guarantees honest
    servers never r-deliver different values."""

    def attack_write(self, tag: str, oid: str, value: bytes,
                     timestamps: Sequence[int]) -> None:
        """Disperse ``value`` honestly but send conflicting broadcast timestamps to different servers."""
        disperse(self, disp_tag(tag, oid), value, self.config)
        instance = rbc_tag(tag, oid)
        for index, server in enumerate(self.simulator.server_pids):
            self.send(server, instance, "rbc-send",
                      timestamps[index % len(timestamps)])


class SplitBrainMartinWriter(ByzantineClientBase):
    """The Byzantine-client attack on replication-based SBQ-L: store a
    *different* value at every server under the same timestamp.

    No read quorum can ever assemble ``n - t`` matching replies for that
    timestamp — the register is wedged for any read that must return it.
    Protocol Atomic's verifiable dispersal makes this attack unmountable.
    """

    def attack_write(self, tag: str, oid: str, ts: int,
                     values: Sequence[bytes]) -> None:
        """Store the attack payload at every server under ``Timestamp(ts, oid)``."""
        timestamp = Timestamp(ts, oid)
        for index, server in enumerate(self.simulator.server_pids):
            self.send(server, tag, "store", oid, timestamp,
                      values[index % len(values)])


class PoisonousGoodsonWriter(ByzantineClientBase):
    """Writes poisonous versions to a Goodson et al. deployment: fragments
    whose cross-checksum is internally consistent per fragment but does
    not correspond to the encoding of any value.

    Servers store them unquestioningly (no write-time validation); every
    subsequent read must fetch, attempt to decode, fail the re-encoding
    check, and roll back — one round trip per poisonous version
    (experiment F6)."""

    def __init__(self, pid: PartyId, config: SystemConfig):
        super().__init__(pid, config)
        from repro.baselines.goodson import goodson_fragment_threshold
        self._coder = ErasureCoder(config.n,
                                   goodson_fragment_threshold(config))

    def attack_write(self, tag: str, oid: str, ts: int,
                     values: Sequence[bytes]) -> None:
        """Store the attack payload at every server under ``Timestamp(ts, oid)``."""
        encodings = [self._coder.encode(value) for value in values]
        fragments = [encodings[j % len(encodings)][j]
                     for j in range(self.config.n)]
        checksum = _cross_checksum(fragments)
        timestamp = Timestamp(ts, oid)
        for index, server in enumerate(self.simulator.server_pids, start=1):
            self.send(server, tag, "store", oid, timestamp,
                      fragments[index - 1], checksum)
