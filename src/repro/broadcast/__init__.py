"""Asynchronous reliable broadcast.

Bracha's protocol (Appendix B of the paper) for ordinary values, plus the
AVID-RBC verifiable broadcast of large values from the cited
Cachin-Tessaro scheme (dispersal + one block-exchange round)."""

from repro.broadcast.verifiable import (
    VerifiableBroadcastServer,
    v_broadcast,
)
from repro.broadcast.reliable import (
    MSG_ECHO,
    MSG_READY,
    MSG_SEND,
    ReliableBroadcastServer,
    r_broadcast,
)

__all__ = [
    "MSG_ECHO",
    "MSG_READY",
    "MSG_SEND",
    "ReliableBroadcastServer",
    "r_broadcast",
    "VerifiableBroadcastServer",
    "v_broadcast",
]
