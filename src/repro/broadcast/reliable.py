"""Bracha's asynchronous reliable broadcast (Appendix B substrate).

Used by writing clients to disseminate the timestamp (Protocol Atomic) or
the timestamp/signature pair (Protocol AtomicNS) to the servers.  For
``n > 3t`` it guarantees, per instance:

* **Validity** — if an honest party r-broadcasts ``m``, every honest
  server eventually r-delivers ``m``;
* **Agreement** — no two honest servers r-deliver different values for
  the same instance, and if one honest server r-delivers, all honest
  servers eventually r-deliver;
* **Integrity** — each honest server r-delivers at most once per
  instance.

An *instance* is the pair ``(tag, origin)`` — Bracha's designated-sender
assumption realized through the channel-authenticated sender of the
initial ``send``.  Scoping instances by origin is what stops a Byzantine
server from hijacking an honest client's broadcast by racing a bogus
``send`` onto the same tag: the forgery merely opens a *different*
instance attributed to the forger (and origins that are servers are
rejected outright — only clients broadcast in the register protocols).
Deliveries report the origin so callers can match sub-protocols of one
operation to one writer.

Message pattern: the origin sends ``send`` to all servers; servers echo;
``n - t`` echoes (or ``t + 1`` readys) trigger a ready; ``2t + 1`` readys
deliver.  Equal values are grouped by canonical encoding, so arbitrary
serializable values can be broadcast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Set, Tuple

from repro.common.ids import PartyId
from repro.common.serialization import encode
from repro.config import SystemConfig
from repro.net.message import Message
from repro.net.process import Process

MSG_SEND = "rbc-send"
MSG_ECHO = "rbc-echo"
MSG_READY = "rbc-ready"

#: every wire message type of reliable broadcast, for observability
#: tooling (per-mtype instruments, phase classification)
MESSAGE_TYPES = (MSG_SEND, MSG_ECHO, MSG_READY)

#: deliver(tag, origin, value)
DeliverCallback = Callable[[str, PartyId, Any], None]


def r_broadcast(process: Process, tag: str, value: Any) -> None:
    """Invoke reliable broadcast of ``value`` with instance ``tag``.

    Executed by clients in the register protocols; the instance is bound
    to the caller's channel-authenticated identity.
    """
    process.send_to_servers(tag, MSG_SEND, value)


@dataclass
class _Instance:
    """Server-side state of one ``(tag, origin)`` broadcast instance."""

    echoed: bool = False
    ready_sent: bool = False
    delivered: bool = False
    echo_senders: Dict[bytes, Set[PartyId]] = field(default_factory=dict)
    ready_senders: Dict[bytes, Set[PartyId]] = field(default_factory=dict)
    values: Dict[bytes, Any] = field(default_factory=dict)


class ReliableBroadcastServer:
    """Server-side component handling every broadcast instance on a process.

    Attach one per server; ``deliver`` is called as
    ``deliver(tag, origin, value)`` when an instance r-delivers.
    """

    def __init__(self, process: Process, config: SystemConfig,
                 deliver: DeliverCallback,
                 allow_server_origins: bool = False):
        self._process = process
        self._config = config
        self._deliver = deliver
        # The register protocols only ever broadcast from clients, so
        # server-originated sends are rejected by default; the atomic-
        # broadcast substrate (servers broadcasting proposals) opts in.
        self._allow_server_origins = allow_server_origins
        # Quorum thresholds are fixed for the lifetime of the run; caching
        # them as plain ints keeps the per-delivery progress checks cheap.
        self._quorum = config.quorum
        self._ready_amplify = config.ready_amplify
        self._deliver_quorum = config.deliver_quorum
        self._instances: Dict[Tuple[str, PartyId], _Instance] = {}
        process.on(MSG_SEND, self._on_send)
        process.on(MSG_ECHO, self._on_echo)
        process.on(MSG_READY, self._on_ready)

    def _instance(self, tag: str, origin: PartyId) -> _Instance:
        key = (tag, origin)
        if key not in self._instances:
            self._instances[key] = _Instance()
        return self._instances[key]

    # -- handlers -----------------------------------------------------------

    def _on_send(self, message: Message) -> None:
        origin = message.sender
        if len(message.payload) != 1:
            return
        if origin.is_server and not self._allow_server_origins:
            return  # servers never originate register broadcasts
        instance = self._instance(message.tag, origin)
        if instance.echoed:
            return
        instance.echoed = True
        # Bracha echo relays the value opaquely by design: integrity
        # comes from 2t+1 servers echoing the *same* encoding, and the
        # r-deliver consumers (the register protocols) verify payload
        # contents against commitments before acting on them.
        self._process.send_to_servers(
            message.tag, MSG_ECHO, origin,
            message.payload[0])  # lint: disable=taint-unverified-sink

    def _gossip(self, message: Message):
        """Common validation for echo/ready: returns (instance, origin,
        value, key) or None."""
        if len(message.payload) != 2 or not message.sender.is_server:
            return None
        origin, value = message.payload
        if not isinstance(origin, PartyId):
            return
        if origin.is_server and not self._allow_server_origins:
            return None
        instance = self._instance(message.tag, origin)
        if instance.delivered:
            return None  # integrity: late traffic is ignored
        key = encode(value)
        instance.values.setdefault(key, value)
        return instance, origin, value, key

    def _on_echo(self, message: Message) -> None:
        parsed = self._gossip(message)
        if parsed is None:
            return
        instance, origin, _, key = parsed
        instance.echo_senders.setdefault(key, set()).add(message.sender)
        self._progress(message.tag, origin, instance, key)

    def _on_ready(self, message: Message) -> None:
        parsed = self._gossip(message)
        if parsed is None:
            return
        instance, origin, _, key = parsed
        instance.ready_senders.setdefault(key, set()).add(message.sender)
        self._progress(message.tag, origin, instance, key)

    # -- state machine ----------------------------------------------------------

    def _progress(self, tag: str, origin: PartyId, instance: _Instance,
                  key: bytes) -> None:
        echoes = len(instance.echo_senders.get(key, ()))
        readys = len(instance.ready_senders.get(key, ()))
        if not instance.ready_sent and (
                echoes >= self._quorum or readys >= self._ready_amplify):
            instance.ready_sent = True
            self._process.send_to_servers(tag, MSG_READY, origin,
                                          instance.values[key])
        if not instance.delivered and readys >= self._deliver_quorum:
            instance.delivered = True
            value = instance.values[key]
            # Drop bookkeeping for completed instances; late messages for
            # this instance are ignored (integrity: deliver at most once).
            self._instances[(tag, origin)] = _Instance(
                echoed=True, ready_sent=True, delivered=True)
            self._deliver(tag, origin, value)

    # -- introspection ----------------------------------------------------------

    def delivered(self, tag: str, origin: PartyId = None) -> bool:
        """Whether this server has r-delivered for ``tag`` (any origin, or
        a specific one)."""
        if origin is not None:
            instance = self._instances.get((tag, origin))
            return bool(instance and instance.delivered)
        return any(instance.delivered
                   for (instance_tag, _), instance
                   in self._instances.items() if instance_tag == tag)

    def storage_bytes(self) -> int:
        """Transient state held by in-flight broadcast instances."""
        total = 0
        for instance in self._instances.values():
            for key in instance.values:
                total += len(key)
        return total
