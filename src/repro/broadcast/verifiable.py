"""Verifiable reliable broadcast of large values (the AVID-RBC scheme).

The paper builds on "the AVID-RBC scheme of Cachin and Tessaro [9]",
which couples verifiable information dispersal with reliable broadcast:
to r-broadcast a *large* value, disperse it — every honest server ends
with its block and an agreed commitment — then let servers exchange
blocks once so each can reconstruct the full value.  Communication is

    ``O(n |F|)``  (dispersal)  +  ``n^2 · |F|/k``  (block exchange)
    =  ``O(n |F|)``  for ``k = Θ(n)``,

versus ``O(n^2 |F|)`` for Bracha's broadcast carrying the value in every
echo and ready — an ``n``-fold saving that experiment F12 measures.
Guarantees are those of reliable broadcast (validity, agreement,
integrity), with the dispersal's verifiability on top: a Byzantine
sender either gets one well-defined value delivered everywhere or
nothing anywhere.

Protocol per instance tag:

1. the sender disperses the value (Protocol Disperse);
2. upon completing the dispersal, a server sends its block (and
   witness) to all servers in a ``vrbc-block`` message;
3. upon holding ``k`` valid blocks for its completed commitment, a
   server decodes and v-delivers the full value.

Step 3 always terminates: AVID agreement means all honest servers
eventually complete and send valid blocks, and ``k <= n - t``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.avid.disperse import AvidServer
from repro.avid.disperse import disperse as _disperse
from repro.common.ids import PartyId
from repro.common.serialization import encode
from repro.config import SystemConfig
from repro.net.message import Message
from repro.net.process import Process

MSG_BLOCK = "vrbc-block"

DeliverCallback = Callable[[str, PartyId, bytes], None]


def v_broadcast(process: Process, tag: str, value: bytes,
                config: SystemConfig) -> None:
    """Verifiably r-broadcast a (possibly large) value: disperse it."""
    _disperse(process, tag, value, config)


@dataclass
class _Instance:
    commitment: Any = None
    client: Optional[PartyId] = None
    #: valid blocks grouped by the commitment they verified against —
    #: Byzantine servers may send blocks under fabricated commitments,
    #: which must never mix with the completed one's group.
    blocks: Dict[bytes, Dict[int, bytes]] = field(default_factory=dict)
    delivered: bool = False

    def group(self) -> Dict[int, bytes]:
        if self.commitment is None:
            return {}
        return self.blocks.setdefault(encode(self.commitment), {})


class VerifiableBroadcastServer:
    """Server component of AVID-RBC.

    ``deliver(tag, sender_client, value)`` fires once per instance with
    the full reconstructed value.  Owns its AVID component; attach one
    per server process.
    """

    def __init__(self, process: Process, config: SystemConfig,
                 deliver: DeliverCallback):
        self._process = process
        self._config = config
        self._deliver = deliver
        self._instances: Dict[str, _Instance] = {}
        self.avid = AvidServer(process, config, self._on_complete)
        process.on(MSG_BLOCK, self._on_block)

    def _instance(self, tag: str) -> _Instance:
        if tag not in self._instances:
            self._instances[tag] = _Instance()
        return self._instances[tag]

    # -- protocol steps -----------------------------------------------------

    def _on_complete(self, tag: str, commitment: Any, client: PartyId,
                     block: bytes, witness: Any) -> None:
        instance = self._instance(tag)
        instance.commitment = commitment
        instance.client = client
        instance.group()[self._process.pid.index] = block
        self._process.send_to_servers(tag, MSG_BLOCK, commitment, block,
                                      witness)
        self._try_deliver(tag, instance)

    def _on_block(self, message: Message) -> None:
        if not message.sender.is_server or len(message.payload) != 3:
            return
        instance = self._instance(message.tag)
        if instance.delivered:
            return
        commitment, block, witness = message.payload
        index = message.sender.index
        if not self._config.commitment_scheme.verify(commitment, index,
                                                     block, witness):
            return
        instance.blocks.setdefault(encode(commitment),
                                   {}).setdefault(index, block)
        self._try_deliver(message.tag, instance)

    def _try_deliver(self, tag: str, instance: _Instance) -> None:
        if instance.delivered or instance.commitment is None:
            return
        group = instance.group()
        if len(group) < self._config.k:
            return
        # Every block in the group verified against the agreed, completed
        # commitment, which the dispersal's verifiability check guarantees
        # to be the encoding of exactly one value — decode cannot produce
        # anything else.
        value = self._config.coder.decode(group.items())
        instance.delivered = True
        client = instance.client
        # Release buffered blocks; keep the delivery marker.
        self._instances[tag] = _Instance(
            commitment=instance.commitment, client=client, delivered=True)
        self._deliver(tag, client, value)

    # -- introspection ----------------------------------------------------------

    def delivered(self, tag: str) -> bool:
        """Whether this server has v-delivered for ``tag``."""
        instance = self._instances.get(tag)
        return bool(instance and instance.delivered)

    def storage_bytes(self) -> int:
        """Transient buffers: the AVID state plus undelivered blocks."""
        total = self.avid.storage_bytes()
        for instance in self._instances.values():
            total += sum(len(block) for block in instance.blocks.values())
        return total
