"""System-wide protocol configuration.

A :class:`SystemConfig` fixes everything the trusted initialization
algorithm of the model sets up before the run: the number of servers ``n``,
the corruption bound ``t``, the erasure-code reconstruction threshold
``k``, the block-commitment flavour, and the threshold-signature scheme
(for Protocol AtomicNS).  All protocol components of one deployment share a
single config instance.

Resilience: the paper's protocols require ``n > 3t`` (optimal).  The
erasure code may use any ``1 <= k <= n - t`` (Theorem 2); the default is
``k = n - t``, which minimizes storage blow-up at ``n / (n - t)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import ConfigurationError
from repro.crypto.commitment import CommitmentScheme, make_commitment_scheme
from repro.crypto.threshold import ThresholdScheme, make_scheme
from repro.erasure.coder import ErasureCoder


@dataclass
class SystemConfig:
    """Parameters shared by all parties of one storage deployment.

    Parameters
    ----------
    n:
        Number of servers.
    t:
        Maximum number of Byzantine servers tolerated; requires
        ``n > 3t``.
    k:
        Erasure-code threshold, ``1 <= k <= n - t``; defaults to ``n - t``
        (minimum storage).  ``k = 1`` degenerates to full replication.
    commitment:
        ``"vector"`` for the paper's hash vectors ``D`` (Figures 1-3) or
        ``"merkle"`` for the hash-tree optimization of Section 2.3.
    threshold_backend:
        ``"ideal"`` (fast; default) or ``"shoup"`` (full RSA threshold
        scheme) — used only by AtomicNS.
    seed:
        Seed for all protocol randomness (key dealing, nonces).
    """

    n: int
    t: int
    k: Optional[int] = None
    commitment: str = "vector"
    threshold_backend: str = "ideal"
    seed: int = 0
    _coder: ErasureCoder = field(init=False, repr=False, default=None)
    _commitment_scheme: CommitmentScheme = field(
        init=False, repr=False, default=None)
    _threshold_scheme: Optional[ThresholdScheme] = field(
        init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        if self.n <= 3 * self.t:
            raise ConfigurationError(
                f"optimal resilience requires n > 3t, got n={self.n} "
                f"t={self.t}")
        if self.k is None:
            self.k = self.n - self.t
        if not 1 <= self.k <= self.n - self.t:
            raise ConfigurationError(
                f"erasure threshold must satisfy 1 <= k <= n - t, got "
                f"k={self.k} with n={self.n} t={self.t}")
        self._coder = ErasureCoder(self.n, self.k)
        self._commitment_scheme = make_commitment_scheme(
            self.commitment, self.n)
        self._threshold_scheme = None

    # -- derived quantities -------------------------------------------------

    @property
    def quorum(self) -> int:
        """``n - t`` — the size of every client-side wait quorum."""
        return self.n - self.t

    @property
    def ready_amplify(self) -> int:
        """``t + 1`` — readys that prove one honest server sent ready."""
        return self.t + 1

    @property
    def deliver_quorum(self) -> int:
        """``2t + 1`` — readys that guarantee delivery everywhere."""
        return 2 * self.t + 1

    # -- shared components -----------------------------------------------------

    @property
    def coder(self) -> ErasureCoder:
        """The deployment's ``(n, k)`` erasure coder."""
        return self._coder

    @property
    def commitment_scheme(self) -> CommitmentScheme:
        """The deployment's block-commitment scheme."""
        return self._commitment_scheme

    @property
    def threshold_scheme(self) -> ThresholdScheme:
        """The dealt ``(n, t)``-threshold signature scheme (lazy: dealt on
        first use, as by the trusted initialization algorithm)."""
        if self._threshold_scheme is None:
            self._threshold_scheme = make_scheme(
                self.threshold_backend, self.n, self.t,
                rng=random.Random(self.seed))
        return self._threshold_scheme
