"""The repair plane: background re-dispersal and scheduled replacement.

A :class:`RepairCoordinator` rides the kv drive loop next to the live
sessions (see :func:`repro.kv.cluster.drive`): each
:meth:`~RepairCoordinator.pump` fires due member replacements, reaps
finished repair rounds, and admits queued ones — never more than
``batch_size`` in flight, so background re-dispersal is rate-limited
against client load instead of flooding the envelope layer.

Work arrives three ways:

* **scheduled replacement** — a chaos :class:`~repro.chaos.plan.CrashSpec`
  with ``replace_after`` set names the decision-clock point at which
  the crashed member is swapped for an amnesiac newcomer
  (:func:`repro.repair.reconfig.replace_member`); every AtomicMd
  register placed on it is then queued for repair.
* **operator trigger** — :meth:`~RepairCoordinator.request_repair`
  queues re-dispersal toward a named server without replacing it (a
  recovered-but-lossy member).
* **health detection** — :meth:`~RepairCoordinator.detect_degraded`
  reads :meth:`repro.obs.health.HealthMonitor.suspicion_scores` and
  queues repairs for every server at or above a threshold.

Repair rounds run on a dedicated :class:`~repro.kv.mux.KvClientHost`
whose inner clients are :class:`repro.repair.protocol.RepairClient`, so
repair traffic shares the simulator's scheduling and envelope batching
with everything else.  Progress is mirrored into the run's obs
registry as ``repair.*`` counters and — when a
:class:`~repro.obs.health.HealthMonitor` is attached — a ``repair.lag``
gauge (outstanding repairs over time), which the monitor CLI renders.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.chaos.plan import FaultPlan
from repro.common.errors import ConfigurationError
from repro.common.ids import client_id
from repro.core.register import OperationHandle
from repro.kv.cluster import KvCluster
from repro.kv.mux import KvClientHost
from repro.repair.protocol import RepairClient
from repro.repair.reconfig import replace_member

#: Protocols the repair round speaks (read-reconstruct-redisperse is
#: built on the AtomicMd metadata/data separation).
REPAIRABLE_PROTOCOLS = ("atomic_md",)


@dataclass
class RepairTask:
    """One queued re-dispersal: a register at a shard-local target."""

    shard_id: int
    tag: str
    #: shard-local index of the server being repaired
    target_index: int
    attempts: int = 0
    handle: Optional[OperationHandle] = None


@dataclass
class _Replacement:
    """One scheduled member swap on the decision clock."""

    server: int
    due: int
    done: bool = False


@dataclass
class RepairStats:
    """Counters accumulated by one coordinator."""

    scheduled: int = 0
    completed: int = 0
    failed: int = 0
    skipped: int = 0
    retries: int = 0
    replacements: int = 0
    #: decision-clock/register backlog pairs for the lag time-series
    lag_samples: List[Dict[str, int]] = field(default_factory=list)


class RepairCoordinator:
    """Drives background repair and reconfiguration for one cluster.

    Construct via :func:`attach_repair`, which also registers the
    coordinator on :attr:`repro.kv.cluster.KvCluster.repair` so the
    drive loop pumps it.  ``batch_size`` bounds concurrent repair
    rounds; ``max_attempts`` bounds per-register retries when chaos
    stalls a round.
    """

    def __init__(self, cluster: KvCluster, batch_size: int = 2,
                 max_attempts: int = 4, monitor=None) -> None:
        if batch_size < 1:
            raise ConfigurationError(
                f"repair batch_size must be >= 1, got {batch_size}")
        if max_attempts < 1:
            raise ConfigurationError(
                f"repair max_attempts must be >= 1, got {max_attempts}")
        self.cluster = cluster
        self.batch_size = batch_size
        self.max_attempts = max_attempts
        self.monitor = monitor
        self.stats = RepairStats()
        self.host = KvClientHost(
            client_id(len(cluster.sessions) + 1), cluster.directory,
            client_cls=RepairClient)
        cluster.simulator.add_process(self.host)
        self._pending: Deque[RepairTask] = deque()
        self._inflight: List[RepairTask] = []
        self._scheduled: List[_Replacement] = []
        self._seq = 0

    # -- clocks and instruments --------------------------------------------

    def _decision_clock(self) -> int:
        simulator = self.cluster.simulator
        chaos = getattr(simulator, "chaos", None)
        if chaos is not None:
            return chaos.decisions
        return simulator.time

    def _count(self, label: str, value: int = 1) -> None:
        """Mirror one repair event into the run's obs registry."""
        observer = self.cluster.simulator.obs
        if observer is None:
            return
        registry = getattr(observer, "registry", None)
        if registry is None:
            recorder = getattr(observer, "recorder", None)
            registry = None if recorder is None else recorder.registry
        if registry is not None:
            registry.counter(f"repair.{label}").inc(value)

    def _record_lag(self) -> None:
        """Sample the repair backlog (pending + in flight) now."""
        lag = self.lag
        self.stats.lag_samples.append(
            {"decisions": self._decision_clock(), "lag": lag})
        monitor = self.monitor
        if monitor is not None:
            monitor.store.gauge("repair.lag").record(
                self.cluster.simulator.time, lag)

    # -- work intake --------------------------------------------------------

    def schedule_from_plan(self, plan: FaultPlan) -> int:
        """Register every ``replace_after`` crash in ``plan``.

        Each such spec swaps its server at decision point
        ``after + replace_after`` (the same clock the fail-stop wrapper
        crashes on).  Returns the number of replacements scheduled.
        """
        added = 0
        for crash in plan.crashes:
            if crash.replace_after is None:
                continue
            self._scheduled.append(_Replacement(
                server=crash.server,
                due=crash.after + crash.replace_after))
            added += 1
        self._scheduled.sort(key=lambda entry: (entry.due, entry.server))
        return added

    def request_repair(self, server_index: int) -> int:
        """Operator trigger: queue re-dispersal of every AtomicMd
        register placed on fleet server ``server_index`` (no
        replacement).  Returns the number of registers queued."""
        tasks = self._tasks_for_server(server_index)
        for task in tasks:
            self._pending.append(task)
        self.stats.scheduled += len(tasks)
        if tasks:
            self._count("scheduled", len(tasks))
            self._record_lag()
        return len(tasks)

    def detect_degraded(self, threshold: float) -> List[int]:
        """Queue repairs for every server whose suspicion score meets
        ``threshold`` (requires an attached health monitor).

        Detection is advisory — with crash-only faults a suspect is
        usually just slow or partitioned, so detection queues
        re-dispersal rather than replacement; swapping identity stays
        an operator/plan decision.
        """
        if self.monitor is None:
            raise ConfigurationError(
                "detect_degraded requires a HealthMonitor; construct "
                "the coordinator with monitor=...")
        suspects: List[int] = []
        for server, score in sorted(
                self.monitor.suspicion_scores().items()):
            if score >= threshold:
                index = int(str(server).lstrip("PC"))
                suspects.append(index)
                self.request_repair(index)
        return suspects

    def _tasks_for_server(self, fleet_index: int) -> List[RepairTask]:
        """Enumerate repairable registers placed on ``fleet_index``.

        Register tags come from the *other* hosts' materialised shard
        state (the operator's view of what exists; the target itself
        may be amnesiac).  Only AtomicMd shards are repairable — other
        protocols count as ``repair.skipped``.
        """
        tasks: List[RepairTask] = []
        directory = self.cluster.directory
        for spec in directory.shards:
            local = spec.local_server_index(fleet_index)
            if local is None:
                continue
            protocol = spec.protocol or self.cluster.protocol
            tags = set()
            for host in self.cluster.servers:
                if host.pid.index == fleet_index:
                    continue
                inner = host.inner_server(spec.shard_id)
                registers = getattr(inner, "_registers", None)
                if registers:
                    tags.update(registers)
            if protocol not in REPAIRABLE_PROTOCOLS:
                if tags:
                    self.stats.skipped += len(tags)
                    self._count("skipped", len(tags))
                continue
            for tag in sorted(tags):
                tasks.append(RepairTask(shard_id=spec.shard_id, tag=tag,
                                        target_index=local))
        return tasks

    # -- drive-loop surface --------------------------------------------------

    @property
    def lag(self) -> int:
        """Registers still awaiting repair (queued + in flight)."""
        return len(self._pending) + len(self._inflight)

    @property
    def idle(self) -> bool:
        """True when no repair or replacement work remains."""
        return (not self._pending and not self._inflight
                and all(entry.done for entry in self._scheduled))

    def pump(self) -> int:
        """Fire due replacements, reap done rounds, admit queued ones."""
        progress = self._fire_replacements()
        progress += self._reap()
        progress += self._admit()
        if progress:
            self.host.kv_flush()
            self._record_lag()
        return progress

    def _fire_replacements(self, force: bool = False) -> int:
        clock = self._decision_clock()
        fired = 0
        for entry in self._scheduled:
            if entry.done:
                continue
            if not force and clock < entry.due:
                continue
            self._replace(entry.server)
            entry.done = True
            fired += 1
            if force:
                break  # quiescent fallback: one swap per retry round
        return fired

    def _replace(self, server_index: int) -> None:
        replace_member(self.cluster, server_index)
        # The minted generation is the coordinator's admission context
        # too (shard math is unchanged, only the epoch stamp moves).
        self.host.directory = self.cluster.directory
        self.stats.replacements += 1
        self._count("replacements")
        tasks = self._tasks_for_server(server_index)
        for task in tasks:
            self._pending.append(task)
        self.stats.scheduled += len(tasks)
        if tasks:
            self._count("scheduled", len(tasks))

    def _reap(self) -> int:
        done = 0
        remaining: List[RepairTask] = []
        for task in self._inflight:
            handle = task.handle
            if handle is None or not handle.done:
                remaining.append(task)
                continue
            done += 1
            if getattr(handle, "repair_failed", False):
                self.stats.failed += 1
                self._count("failed")
            else:
                self.stats.completed += 1
                self._count("completed")
        if done:
            self._inflight = remaining
        return done

    def _admit(self) -> int:
        admitted = 0
        while self._pending and len(self._inflight) < self.batch_size:
            task = self._pending.popleft()
            self._invoke(task)
            self._inflight.append(task)
            admitted += 1
        return admitted

    def _invoke(self, task: RepairTask) -> None:
        client = self.host.inner_client(task.shard_id)
        if not hasattr(client, "invoke_repair"):
            # A shard-level protocol override displaced RepairClient.
            task.handle = None
            self.stats.skipped += 1
            self._count("skipped")
            task.attempts = self.max_attempts
            return
        self._seq += 1
        task.attempts += 1
        oid = f"c{self.host.pid.index}.r{self._seq}"
        task.handle = client.invoke_repair(task.tag, oid,
                                           task.target_index)

    def retry_pending(self) -> int:
        """Quiescent-network fallback, mirroring session retries.

        Re-invokes every stalled repair round with budget left, and —
        because the decision clock cannot advance on a silent network —
        force-fires the earliest still-scheduled replacement so churn
        plans terminate even when the workload drains first.  Returns
        the number of actions taken.
        """
        acted = self._fire_replacements(force=True)
        skipped: List[RepairTask] = []
        for task in list(self._inflight):
            handle = task.handle
            if handle is not None and handle.done:
                continue
            if task.attempts >= self.max_attempts:
                if handle is None:
                    skipped.append(task)
                continue
            self._invoke(task)
            self.stats.retries += 1
            self._count("retries")
            acted += 1
        for task in skipped:
            self._inflight.remove(task)
        if acted:
            self.host.kv_flush()
            self._record_lag()
        return acted


def attach_repair(cluster: KvCluster, plan: Optional[FaultPlan] = None,
                  batch_size: int = 2, max_attempts: int = 4,
                  monitor=None) -> RepairCoordinator:
    """Build a coordinator for ``cluster`` and hook it into the drive
    loop (sets :attr:`~repro.kv.cluster.KvCluster.repair`).

    ``plan`` pre-registers every ``replace_after`` crash as a scheduled
    member swap.  Repair stays fully off — and driven schedules stay
    byte-identical — unless this is called.
    """
    coordinator = RepairCoordinator(cluster, batch_size=batch_size,
                                    max_attempts=max_attempts,
                                    monitor=monitor)
    if plan is not None:
        coordinator.schedule_from_plan(plan)
    cluster.repair = coordinator
    return coordinator
