"""Repair operations: read-reconstruct-redisperse for AtomicMd registers.

A *repair* restores the redundancy of one register at one server
without advancing logical time.  The repair client runs the read
protocol's metadata quorum and verified ``k``-block fetch (reusing
:meth:`~repro.core.atomic_md.AtomicMdClient._read_condition`, including
its escalation past misses and corrupted blocks), decodes the value,
re-encodes it, and pushes the *target server's own* block back under
the version's original TIMESTAMP via ``md-repair``.  The server accepts
exactly as it would an ``md-store``/r-deliver join — block verified
against the carried cross-checksum — and acks with ``md-repair-ack``.

Repair is **not** a register operation of Definition 1: it never enters
operation histories and never mints a TIMESTAMP.  Atomicity is
unaffected because the repaired version is byte-identical to one the
metadata quorum already vouched for; the re-encode is guarded by
re-deriving the cross-checksum and requiring it to equal the
quorum-agreed one, so a decode from inconsistently-dispersed blocks
(the poisonous-write vector AtomicMd tolerates from Byzantine writers)
surfaces as ``repair-failed`` instead of installing a forgery.

Clients are crash-only in this model, so the repair plane — like the
write plane — trusts the *repairer* to name versions honestly; see
docs/ROBUSTNESS.md for why repair authority stays with the operator.
"""

from __future__ import annotations

from repro.common.ids import server_id
from repro.common.serialization import encode
from repro.core.atomic_md import (
    MSG_READ,
    MSG_READ_COMPLETE,
    MSG_REPAIR,
    MSG_REPAIR_ACK,
    AtomicMdClient,
)
from repro.core.register import OperationHandle

#: Handle kind for repair rounds (never enters operation histories).
KIND_REPAIR = "repair"


class RepairClient(AtomicMdClient):
    """An AtomicMd client that can additionally run repair rounds.

    Used by :class:`repro.repair.coordinator.RepairCoordinator` as the
    inner client of a dedicated :class:`repro.kv.mux.KvClientHost`, so
    repair traffic rides the same envelope batching as live client
    load and is rate-limited by the coordinator's admission budget.
    """

    def invoke_repair(self, tag: str, oid: str,
                      target_index: int) -> OperationHandle:
        """Start a repair of ``tag`` at shard-local server
        ``target_index``; the handle completes once the target acks the
        re-dispersed block (``handle.repair_failed`` is set instead
        when the quorum-agreed version could not be faithfully
        re-encoded)."""
        handle = self._new_handle(KIND_REPAIR, tag, oid)
        self.record_input(tag, "repair", oid)
        handle.invoke_time = self.simulator.time
        self.start_thread(self._repair_thread(handle, target_index))
        return handle

    def _repair_thread(self, handle: OperationHandle, target_index: int):
        tag, oid = handle.tag, handle.oid
        self.send_to_servers(tag, MSG_READ, oid)
        timestamp, commitment, pairs = \
            yield self._read_condition(tag, oid)
        self.send_to_servers(tag, MSG_READ_COMPLETE, oid)
        value = self.config.coder.decode(pairs[: self.config.k])
        blocks = self.config.coder.encode(value)
        recommit, witnesses = \
            self.config.commitment_scheme.commit(blocks)
        if encode(recommit) != encode(commitment):
            # The decode came from an inconsistent dispersal (Byzantine
            # writer): re-dispersing would install blocks the original
            # cross-checksum never vouched for.  Fail loudly instead.
            handle.repair_failed = True
            self.output(tag, "repair-failed", oid, timestamp)
            handle._complete(self.simulator.time, timestamp=timestamp)
            handle.latency_rounds = self.activation_depth
            handle.completion_cause = self.activation_msg_id
            return
        target = server_id(target_index)
        self.send(target, tag, MSG_REPAIR, oid, timestamp, commitment,
                  blocks[target_index - 1], witnesses[target_index - 1])
        # Not a quorum: repair targets exactly one (trusted-to-be-fresh)
        # server, so a single matching ack from *that* sender completes.
        yield self.condition_quorum(
            tag, MSG_REPAIR_ACK, 1,  # lint: disable=quorum-literal
            where=lambda m: (m.sender == target
                             and len(m.payload) == 2
                             and m.payload[0] == oid
                             and m.payload[1] == timestamp))
        self.output(tag, "repair", oid, timestamp)
        handle._complete(self.simulator.time, timestamp=timestamp)
        handle.latency_rounds = self.activation_depth
        handle.completion_cause = self.activation_msg_id
