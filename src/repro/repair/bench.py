"""Churn benchmark: crash → repair → re-crash storms vs an unrepaired fleet.

The payload behind ``benchmarks/BENCH_kv_churn.json``
(``repro kv-bench --churn``).  One storm plan staggers ``t + 1``
permanent crashes — one more than the resilience budget — each marked
``replace_after`` so a repair plane, when attached, swaps the crashed
member for an amnesiac newcomer and re-disperses its registers before
the next crash lands.  Three cases run the same seeded workload:

* ``faultfree`` — no plan, the throughput baseline;
* ``churn+repair`` — the storm with a
  :class:`~repro.repair.coordinator.RepairCoordinator` attached: the
  fleet never has more than ``t`` members missing at once, so every
  operation completes and histories stay linearizable, with repair lag
  pinned back to zero;
* ``churn-norepair`` — the same storm with repair off: the third
  permanent crash leaves ``n - (t + 1) < n - t`` servers alive, below
  every quorum, and the run loses liveness (caught and reported, with
  whatever history *did* complete still checked atomic).

The summary's headline is ``throughput_retention``: repaired ops/tick
over fault-free ops/tick — the fraction of fault-free throughput the
fleet keeps while absorbing a full churn storm in the background.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.chaos.injector import FaultInjector
from repro.chaos.plan import CrashSpec, FaultPlan
from repro.cluster import PROTOCOLS
from repro.common.errors import LivenessError
from repro.config import SystemConfig
from repro.kv.bench import (
    _chaos_overrides,
    _scheduler_for,
    collect_kv_row,
)
from repro.kv.cluster import build_kv_cluster, drive
from repro.kv.directory import KvDirectory
from repro.obs import TraceRecorder
from repro.repair.coordinator import attach_repair
from repro.workloads.kv import kv_workload


def churn_storm_plan(n: int, t: int, seed: int = 0,
                     first_crash: int = 40, stagger: int = 120,
                     replace_after: int = 40) -> FaultPlan:
    """A staggered crash storm of ``t + 1`` servers with replacement.

    Servers ``n, n - 1, .., n - t`` permanently crash at decision
    points ``first_crash + i * stagger``; each carries
    ``replace_after`` so an attached repair plane swaps it
    ``replace_after`` decisions after its crash point — well before
    the next crash lands, keeping no more than one member missing at a
    time.  Without repair the same plan spends ``t + 1`` resilience
    units and the fleet drops below quorum, which is exactly the
    comparison the churn bench draws (``exceeds_t`` declares that
    deliberately).
    """
    servers = tuple(range(n, n - (t + 1), -1))
    crashes = tuple(
        CrashSpec(server=server, after=first_crash + rank * stagger,
                  trigger="decisions", replace_after=replace_after)
        for rank, server in enumerate(servers))
    return FaultPlan(name="churn-storm", seed=seed, faulty=servers,
                     crashes=crashes, exceeds_t=len(servers) > t)


def _alive_servers(cluster) -> int:
    """Fleet members currently able to answer (replacements count;
    crashed fail-stop hosts do not)."""
    return sum(1 for host in cluster.servers
               if not getattr(host, "crashed", False))


def run_kv_churn_case(num_shards: int, n: int, t: int, sessions: int,
                      keys: int, ops: int, write_ratio: float,
                      seed: int, value_size: int,
                      plan: Optional[FaultPlan], repair: bool,
                      case: str, batch_size: int = 2,
                      monitor=None, max_attempts: int = 6
                      ) -> Dict[str, Any]:
    """Run one churn case and return its row (a superset of
    :class:`~repro.kv.bench.KvBenchRow`'s columns).

    A :class:`~repro.common.errors.LivenessError` from the drive loop
    is caught and reported as ``liveness_violation`` — for the
    unrepaired storm that *is* the measurement.  The completed portion
    of the history is still checked linearizable either way.
    """
    fleet = SystemConfig(n=n, t=t, seed=seed)
    directory = KvDirectory(fleet, num_shards, shard_k=t + 1)
    overrides = None
    if plan is not None:
        plan.validate(n, t)
        overrides = _chaos_overrides(plan, PROTOCOLS["atomic_md"][0])
    cluster = build_kv_cluster(
        directory, protocol="atomic_md", num_sessions=sessions,
        scheduler=_scheduler_for(plan, seed),
        server_overrides=overrides, max_attempts=max_attempts)
    if monitor is not None:
        recorder = monitor.attach(cluster.simulator).recorder
    else:
        recorder = TraceRecorder().attach(cluster.simulator)
    if plan is not None:
        cluster.simulator.attach_injector(FaultInjector(plan))
    coordinator = None
    if repair:
        coordinator = attach_repair(cluster, plan=plan,
                                    batch_size=batch_size,
                                    monitor=monitor)
    workload = kv_workload(num_sessions=sessions, num_keys=keys,
                           ops=ops, write_ratio=write_ratio, seed=seed,
                           value_size=value_size)
    liveness_violation = False
    try:
        stats = drive(cluster, workload, seed=seed)
    except LivenessError:
        liveness_violation = True
        completed = sum(1 for session in cluster.sessions
                        for handle in session.handles if handle.done)
        stats = {"completed": completed, "retries": 0,
                 "backpressure_hits": 0}
    if monitor is not None:
        monitor.finalize()
    row = collect_kv_row(
        recorder, cluster, stats, num_shards=num_shards,
        protocol="atomic_md",
        plan_label=None if plan is None else plan.name,
        sessions=sessions, keys=keys, ops=ops)
    extra: Dict[str, Any] = {
        "case": case,
        "liveness_violation": liveness_violation,
        "alive_servers": _alive_servers(cluster),
        "quorum": fleet.quorum,
        "session_epochs": sorted(
            {session.epoch for session in cluster.sessions}),
    }
    if coordinator is not None:
        extra.update({
            "replacements": coordinator.stats.replacements,
            "repairs_completed": coordinator.stats.completed,
            "repairs_failed": coordinator.stats.failed,
            "repairs_skipped": coordinator.stats.skipped,
            "repair_retries": coordinator.stats.retries,
            "repair_lag_final": coordinator.lag,
            "repair_lag_series": coordinator.stats.lag_samples,
        })
    return {**extra, **row.to_json()}


def run_kv_churn_comparison(n: int = 7, t: int = 2,
                            num_shards: int = 2, sessions: int = 4,
                            keys: int = 8, ops: int = 160,
                            write_ratio: float = 0.5, seed: int = 0,
                            value_size: int = 64,
                            first_crash: int = 40, stagger: int = 120,
                            replace_after: int = 40,
                            batch_size: int = 2) -> Dict[str, Any]:
    """Fault-free vs churn-with-repair vs churn-without on one workload.

    The storm crashes ``t + 1`` servers, so the unrepaired fleet ends
    with ``n - t - 1`` members — one short of every quorum — while the
    repaired fleet is made whole again after each crash.  The summary
    pins the acceptance claims: repaired throughput retention against
    the fault-free baseline, repaired repair-lag driven back to zero,
    and the unrepaired run's liveness violation (or, if it squeaked
    through, its below-quorum survivor count).
    """
    plan = churn_storm_plan(n, t, seed=seed, first_crash=first_crash,
                            stagger=stagger,
                            replace_after=replace_after)
    common = dict(num_shards=num_shards, n=n, t=t, sessions=sessions,
                  keys=keys, ops=ops, write_ratio=write_ratio,
                  seed=seed, value_size=value_size)
    rows: List[Dict[str, Any]] = [
        run_kv_churn_case(plan=None, repair=False, case="faultfree",
                          **common),
        run_kv_churn_case(plan=plan, repair=True, case="churn+repair",
                          batch_size=batch_size, **common),
        run_kv_churn_case(plan=plan, repair=False,
                          case="churn-norepair", **common),
    ]
    by_case = {row["case"]: row for row in rows}
    base = by_case["faultfree"]["ops_per_tick"]
    repaired = by_case["churn+repair"]
    norepair = by_case["churn-norepair"]
    summary = {
        "ops_per_tick_faultfree": base,
        "ops_per_tick_repaired": repaired["ops_per_tick"],
        "throughput_retention": round(
            repaired["ops_per_tick"] / base, 3) if base else 0.0,
        "repaired_completed_all": repaired["completed"] == ops,
        "repaired_linearizable": repaired["linearizable"],
        "repair_lag_final": repaired["repair_lag_final"],
        "replacements": repaired["replacements"],
        "repairs_completed": repaired["repairs_completed"],
        "norepair_liveness_violation": norepair["liveness_violation"],
        "norepair_below_quorum":
            norepair["alive_servers"] < norepair["quorum"],
    }
    return {
        "config": {**common, "first_crash": first_crash,
                   "stagger": stagger, "replace_after": replace_after,
                   "batch_size": batch_size,
                   "plan": plan.to_json()},
        "rows": rows,
        "summary": summary,
    }
