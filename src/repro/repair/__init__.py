"""Repair and reconfiguration plane for the kv layer.

Background re-dispersal (:mod:`repro.repair.protocol`,
:mod:`repro.repair.coordinator`), epoch-stamped fleet member
replacement (:mod:`repro.repair.reconfig`), and the churn benchmark
harness (:mod:`repro.repair.bench`).  The plane is strictly opt-in:
a cluster without an attached coordinator drives byte-identical
schedules to one built before this package existed.
"""

from repro.repair.coordinator import (
    RepairCoordinator,
    RepairStats,
    RepairTask,
    attach_repair,
)
from repro.repair.protocol import KIND_REPAIR, RepairClient
from repro.repair.reconfig import next_generation, replace_member

__all__ = [
    "KIND_REPAIR",
    "RepairClient",
    "RepairCoordinator",
    "RepairStats",
    "RepairTask",
    "attach_repair",
    "next_generation",
    "replace_member",
]
