"""Reconfiguration: epoch-stamped directory generations and member swap.

Replacing a fleet member is a *generation change*: the old
:class:`~repro.kv.directory.KvDirectory` is never mutated — a new one
is minted at ``epoch + 1`` with identical shard math (same placements,
same per-shard configs, so every register tag maps exactly as before)
and announced to every session via
:meth:`~repro.kv.session.KvSession.begin_reconfiguration`.  Sessions
drain their in-flight operations on the old epoch before admitting
under the new one, and flush their read caches at the swap.

**Atomicity across the transition.**  The replacement server keeps the
crashed member's *identity* but none of its state (it answers with the
initial TIMESTAMP until repaired).  Three facts keep histories atomic:

1. *Draining ops stay correct*: an operation admitted under the old
   epoch formed (or will form) its quorums against the same ``n``
   identities; the replaced member either never answers (crashed) or
   answers honestly from fresh state, which is indistinguishable from
   an honest server that simply missed earlier writes — the protocols
   already tolerate ``t`` such servers, and reconfiguration replaces
   exactly one at a time.
2. *New-epoch reads cannot miss old-epoch writes*: a write that
   completed before the swap holds a metadata quorum of ``n - t``
   servers of which at most one (the newcomer) is amnesiac; any
   new-epoch read quorum of ``n - t`` intersects it in ``n - 2t >=
   t + 1`` servers, so with crash-only faults at least one
   intersection member is a non-replaced honest server that still
   carries the write's TIMESTAMP.  With Byzantine servers the margin
   thins — that is why session caches flush at the bump (see
   docs/ROBUSTNESS.md).
3. *No operation spans two generations*: admission stops the moment a
   session learns of the pending generation and resumes only after its
   in-flight set is empty, so every operation's quorums form entirely
   within one generation — there is no message that carries an
   old-epoch quorum certificate into a new-epoch decision.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.ids import PartyId, server_id
from repro.kv.cluster import KvCluster
from repro.kv.directory import KvDirectory
from repro.kv.mux import KvServer


def next_generation(directory: KvDirectory) -> KvDirectory:
    """Mint the successor generation of ``directory`` (``epoch + 1``).

    Shard math is reproduced exactly — same fleet config, shard shape,
    erasure threshold, and per-shard protocol overrides — so every key
    maps to the same register tag on the same placement; only the
    epoch stamp advances.
    """
    overrides: Dict[int, str] = {
        spec.shard_id: spec.protocol
        for spec in directory.shards if spec.protocol is not None}
    return KvDirectory(
        directory.fleet_config, directory.num_shards,
        shard_n=directory.shard_n, shard_t=directory.shard_t,
        shard_k=directory.shard_k,
        protocol_overrides=overrides or None,
        epoch=directory.epoch + 1)


def replace_member(cluster: KvCluster, server_index: int,
                   server_factory: Optional[Callable[
                       [PartyId, KvDirectory], KvServer]] = None,
                   initial_value: bytes = b""
                   ) -> Tuple[KvServer, KvServer]:
    """Swap fleet server ``server_index`` for a fresh (amnesiac) host.

    Mints the next directory generation, builds the replacement under
    the same :class:`~repro.common.ids.PartyId` (identity survives;
    state does not — any inbox the crashed host buffered dies with
    it), swaps it into the simulator and the cluster roster, and
    announces the new generation to every session.  Returns
    ``(old_host, new_host)``.

    The newcomer answers from initial state until the repair plane
    re-disperses its blocks; see
    :class:`repro.repair.coordinator.RepairCoordinator`.
    """
    fleet_n = cluster.directory.fleet_config.n
    if not 1 <= server_index <= fleet_n:
        raise ConfigurationError(
            f"server index {server_index} out of range [1, {fleet_n}]")
    directory = next_generation(cluster.directory)
    pid = server_id(server_index)
    if server_factory is not None:
        host = server_factory(pid, directory)
    else:
        from repro.cluster import PROTOCOLS
        server_cls = PROTOCOLS[cluster.protocol][0]
        host = KvServer(pid, directory, server_cls=server_cls,
                        initial_value=initial_value)
    old = cluster.simulator.replace_process(host)
    cluster.servers[server_index - 1] = host
    cluster.directory = directory
    for session in cluster.sessions:
        session.begin_reconfiguration(directory)
    return old, host
