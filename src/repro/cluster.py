"""Deployment facade: build a simulated storage cluster in one call.

Wires a :class:`~repro.net.simulator.Simulator` with ``n`` register servers
and any number of clients for a chosen protocol, optionally replacing some
servers or clients with Byzantine variants from :mod:`repro.faults` (or any
compatible process).  This is the entry point examples, tests, and the
experiment harness all share.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.baselines.abc_register import AbcRegisterClient, AbcRegisterServer
from repro.baselines.bazzi_ding import BazziDingClient, BazziDingServer
from repro.baselines.goodson import GoodsonClient, GoodsonServer
from repro.baselines.martin import MartinClient, MartinServer
from repro.baselines.phalanx import PhalanxClient, PhalanxServer
from repro.common.errors import ConfigurationError, LivenessError
from repro.common.ids import PartyId, client_id, server_id
from repro.config import SystemConfig
from repro.core.atomic import AtomicClient, AtomicServer
from repro.core.atomic_md import AtomicMdClient, AtomicMdServer
from repro.core.atomic_ns import AtomicNSClient, AtomicNSServer
from repro.core.no_listeners import NoListenersClient, NoListenersServer
from repro.core.register import OperationHandle
from repro.net.process import Process
from repro.net.schedulers import Scheduler
from repro.net.simulator import Simulator

#: protocol name -> (server class, client class)
PROTOCOLS = {
    "atomic": (AtomicServer, AtomicClient),
    "atomic_ns": (AtomicNSServer, AtomicNSClient),
    # Metadata/data separation (MDStore-style): tiny metadata quorums,
    # blocks pushed point-to-point and read from only k servers.
    # Requires k <= n - 2t (use SystemConfig(n, t, k=t + 1)).
    "atomic_md": (AtomicMdServer, AtomicMdClient),
    "martin": (MartinServer, MartinClient),
    "bazzi_ding": (BazziDingServer, BazziDingClient),
    "goodson": (GoodsonServer, GoodsonClient),
    "phalanx": (PhalanxServer, PhalanxClient),
    # The §3.4 alternative: operations serialized by atomic broadcast.
    "abc": (AbcRegisterServer, AbcRegisterClient),
    # Ablation variant: Protocol Atomic without the listeners mechanism
    # (reads retry; wait-freedom is lost under concurrency).
    "no_listeners": (NoListenersServer, NoListenersClient),
}

ProcessFactory = Callable[[PartyId, SystemConfig], Process]


@dataclass
class Cluster:
    """A wired simulation: config, network, servers, and clients."""

    config: SystemConfig
    simulator: Simulator
    servers: List[Process]
    clients: List[Process]
    protocol: str = "atomic_ns"

    def client(self, index: int) -> Process:
        """Client ``C_index`` (1-based, as the paper numbers clients)."""
        return self.clients[index - 1]

    def server(self, index: int) -> Process:
        """Server ``P_index`` (1-based)."""
        return self.servers[index - 1]

    # -- convenience synchronous operations --------------------------------

    def run(self, max_steps: int = 1_000_000) -> int:
        """Deliver messages until quiescence."""
        return self.simulator.run(max_steps)

    def write(self, client_index: int, tag: str, oid: str,
              value: bytes) -> OperationHandle:
        """Invoke a write and run the network until it terminates.

        Raises :class:`LivenessError` when the network quiesces with the
        operation still pending (``run_until`` reports that explicitly)."""
        handle = self.client(client_index).invoke_write(tag, oid, value)
        try:
            self.simulator.run_until(lambda: handle.done)
        except LivenessError as exc:
            raise LivenessError(f"write {oid} did not terminate") from exc
        return handle

    def read(self, client_index: int, tag: str,
             oid: str) -> OperationHandle:
        """Invoke a read and run the network until it terminates.

        Raises :class:`LivenessError` when the network quiesces with the
        operation still pending (``run_until`` reports that explicitly)."""
        handle = self.client(client_index).invoke_read(tag, oid)
        try:
            self.simulator.run_until(lambda: handle.done)
        except LivenessError as exc:
            raise LivenessError(f"read {oid} did not terminate") from exc
        return handle


def build_cluster(
    config: SystemConfig,
    protocol: str = "atomic_ns",
    num_clients: int = 1,
    scheduler: Optional[Scheduler] = None,
    initial_value: bytes = b"",
    server_overrides: Optional[Dict[int, ProcessFactory]] = None,
    client_overrides: Optional[Dict[int, ProcessFactory]] = None,
) -> Cluster:
    """Build a cluster of ``config.n`` servers plus ``num_clients`` clients.

    ``server_overrides`` / ``client_overrides`` map 1-based indices to
    factories producing replacement processes — this is how Byzantine
    parties are injected.  The number of overridden servers is the
    experimenter's responsibility to keep within ``config.t`` when honest
    behaviour is expected.
    """
    if protocol not in PROTOCOLS:
        raise ConfigurationError(
            f"unknown protocol {protocol!r}; choose from "
            f"{sorted(PROTOCOLS)}")
    server_cls, client_cls = PROTOCOLS[protocol]
    simulator = Simulator(scheduler=scheduler)
    server_overrides = server_overrides or {}
    client_overrides = client_overrides or {}

    servers: List[Process] = []
    for index in range(1, config.n + 1):
        pid = server_id(index)
        if index in server_overrides:
            process = server_overrides[index](pid, config)
        else:
            process = server_cls(pid, config, initial_value=initial_value)
        servers.append(simulator.add_process(process))

    clients: List[Process] = []
    for index in range(1, num_clients + 1):
        pid = client_id(index)
        if index in client_overrides:
            process = client_overrides[index](pid, config)
        else:
            process = client_cls(pid, config)
        clients.append(simulator.add_process(process))

    return Cluster(config=config, simulator=simulator, servers=servers,
                   clients=clients, protocol=protocol)
