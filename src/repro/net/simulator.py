"""The asynchronous network simulator (the paper's system model).

A :class:`Simulator` owns a set of party processes, a bag of in-flight
messages, and a :class:`~repro.net.schedulers.Scheduler` playing the
adversary's role of choosing delivery order.  Each delivery activates the
recipient, which runs its threads to quiescence (see
:mod:`repro.net.process`); the interleaving of activations defines the
logical global clock — no two events share a point in time.

Every run is *complete*: :meth:`run` keeps delivering until no message is
in flight, so every message sent between honest parties is eventually
delivered, exactly as the model requires.  A step bound guards against
protocols that generate traffic forever (a bug, or a Byzantine flood that
experiments cap explicitly).
"""

from __future__ import annotations

from itertools import islice
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.common.errors import LivenessError, SimulationError
from repro.common.ids import PartyId
from repro.net.message import (
    EVENT_CHAOS,
    EVENT_DELIVER,
    EVENT_INPUT,
    EVENT_OUTPUT,
    LocalEvent,
    Message,
)
from repro.net.metrics import Metrics
from repro.net.process import Process
from repro.net.schedulers import FifoScheduler, Scheduler

OutputObserver = Callable[[LocalEvent], None]


class PendingBag:
    """Order-preserving indexed bag of in-flight messages.

    Semantically identical to a plain ``list`` under ``append`` /
    ``pop(index)`` — logical index ``i`` is always the ``i``-th oldest
    surviving message — but implemented as a ring buffer with a head
    offset, so the FIFO pattern ``pop(0)`` is O(1) amortized instead of
    shifting every element.  Popped head slots are reclaimed by periodic
    compaction once they outnumber the live elements (amortized O(1) per
    operation).  Arbitrary-index pops fall back to an in-place delete,
    matching ``list.pop(i)`` exactly, so adversarial schedulers keep
    their index semantics and seeded schedules are byte-identical to the
    previous list-backed implementation.
    """

    __slots__ = ("_items", "_head")

    #: Compact only beyond this many dead head slots (avoids thrashing
    #: on small bags, where the O(n) slice is still trivially cheap).
    _COMPACT_THRESHOLD = 512

    def __init__(self) -> None:
        self._items: List[Message] = []
        self._head = 0

    def __len__(self) -> int:
        return len(self._items) - self._head

    def __bool__(self) -> bool:
        return len(self._items) > self._head

    def __iter__(self) -> Iterator[Message]:
        """Iterate oldest-to-newest (logical order)."""
        return islice(iter(self._items), self._head, None)

    def __getitem__(self, index: int) -> Message:
        """Logical indexing; supports the negative indices ``list`` does."""
        length = len(self._items) - self._head
        if index < 0:
            index += length
        if not 0 <= index < length:
            raise IndexError("pending index out of range")
        return self._items[self._head + index]

    def append(self, message: Message) -> None:
        """Add ``message`` at the back (newest position)."""
        self._items.append(message)

    def pop(self, index: int = 0) -> Message:
        """Remove and return the message at logical ``index``.

        ``pop(0)`` (the FIFO case) advances the head offset in O(1);
        other indices delete in place like ``list.pop``.
        """
        length = len(self._items) - self._head
        if index < 0:
            index += length
        if not 0 <= index < length:
            raise IndexError("pop index out of range")
        if index == 0:
            message = self._items[self._head]
            # Release the reference so compaction latency never keeps
            # delivered payloads alive.
            self._items[self._head] = None  # type: ignore[call-overload]
            self._head += 1
            head = self._head
            if (head >= self._COMPACT_THRESHOLD
                    and head * 2 >= len(self._items)):
                del self._items[:head]
                self._head = 0
            return message
        return self._items.pop(self._head + index)


class Simulator:
    """Event-driven simulation of the asynchronous message-passing model.

    Parameters
    ----------
    scheduler:
        Delivery-order strategy (defaults to FIFO).  Pass a seeded
        :class:`~repro.net.schedulers.RandomScheduler` for adversarial
        reorderings.
    record_deliveries:
        Also log every message delivery in the event log (memory-heavy;
        off by default — input/output actions are always logged).
    """

    def __init__(self, scheduler: Optional[Scheduler] = None,
                 record_deliveries: bool = False):
        self.scheduler = scheduler or FifoScheduler()
        self.metrics = Metrics()
        self.event_log: List[LocalEvent] = []
        self.time = 0
        self._processes: Dict[PartyId, Process] = {}
        self._server_pids: List[PartyId] = []
        self._pending = PendingBag()
        self._next_msg_id = 0
        self._record_deliveries = record_deliveries
        self._output_observers: List[OutputObserver] = []
        self._invariants: List[Callable[["Simulator"], None]] = []
        #: attached tracer (duck-typed; see
        #: :class:`repro.obs.recorder.TraceRecorder`).  ``None`` keeps the
        #: hot path free of tracing overhead.
        self.obs = None
        # Optional tracer hooks, resolved once at attach time so the
        # delivery loop pays a single None-check when they are absent.
        self._obs_on_tick = None
        self._obs_on_chaos = None
        #: attached fault injector (duck-typed; see
        #: :class:`repro.chaos.injector.FaultInjector`).  ``None`` keeps
        #: the hot path free of interposition overhead; an injector with
        #: an empty plan is byte-identical to no injector at all.
        self.chaos = None

    def attach_tracer(self, recorder) -> None:
        """Attach a tracing recorder (one per run).

        The recorder receives ``on_send`` / ``on_deliver`` /
        ``on_input`` / ``on_output`` / ``on_quorum`` callbacks; see
        :mod:`repro.obs.recorder` for the reference implementation.
        Recorders may additionally implement ``on_tick(time)`` (called
        after every delivery — the windowed-rollup flush hook) and
        ``on_chaos(event)`` (called for every injected-fault event);
        both are measurement-only and must not feed back into the
        schedule.
        """
        if self.obs is not None:
            raise SimulationError("a tracer is already attached")
        self.obs = recorder
        self._obs_on_tick = getattr(recorder, "on_tick", None)
        self._obs_on_chaos = getattr(recorder, "on_chaos", None)

    def attach_injector(self, injector) -> None:
        """Attach a fault injector (one per run; attach before the run).

        The injector intercepts every enqueue (``intercept_enqueue``) and
        every scheduling decision (``before_choose``); see
        :class:`repro.chaos.injector.FaultInjector` for the reference
        implementation.  With no faults to inject the interposition is
        schedule-preserving: event logs are byte-identical to a run
        without an injector.
        """
        if self.chaos is not None:
            raise SimulationError("a fault injector is already attached")
        self.chaos = injector
        bind = getattr(injector, "bind", None)
        if bind is not None:
            bind(self)

    # -- topology -----------------------------------------------------------

    def add_process(self, process: Process) -> Process:
        """Attach a party to the network; returns it for chaining."""
        if process.pid in self._processes:
            raise SimulationError(f"duplicate party {process.pid}")
        self._processes[process.pid] = process
        if process.pid.is_server:
            self._server_pids.append(process.pid)
            self._server_pids.sort()
        process.bind(self)
        return process

    def replace_process(self, process: Process) -> Process:
        """Swap the party at ``process.pid`` for ``process``; returns
        the replaced process.

        The reconfiguration primitive (see :mod:`repro.repair`): fleet
        member replacement keeps the *identity* — same :class:`PartyId`,
        same channels — while the machine behind it changes, so the
        roster, in-flight messages, and every other party's addressing
        are untouched.  Messages already in flight to the identity are
        delivered to the replacement (which, being amnesiac, treats
        them as its fresh state dictates).  The old process is unbound
        and never scheduled again.
        """
        old = self._processes.get(process.pid)
        if old is None:
            raise SimulationError(
                f"cannot replace unknown party {process.pid}")
        self._processes[process.pid] = process
        process.bind(self)
        return old

    @property
    def server_pids(self) -> List[PartyId]:
        """All server identities, in index order."""
        return list(self._server_pids)

    def process(self, pid: PartyId) -> Process:
        """Look up a party by identity."""
        try:
            return self._processes[pid]
        except KeyError:
            raise SimulationError(f"unknown party {pid}") from None

    @property
    def processes(self) -> List[Process]:
        return list(self._processes.values())

    # -- messaging ------------------------------------------------------------

    def enqueue(self, sender: PartyId, recipient: PartyId, tag: str,
                mtype: str, payload: Tuple[Any, ...],
                wire_size: Optional[int] = None) -> None:
        """Called by processes to send; the message joins the in-flight bag.

        The sender identity comes from the calling process, so origins are
        authenticated (secure channels).  Unknown recipients are an error —
        the topology is fixed before the run.

        ``wire_size`` lets broadcast senders stamp a precomputed size onto
        all ``n`` copies of a message instead of each copy re-deriving it
        (the size is a pure function of ``(tag, mtype, payload)``).
        """
        if recipient not in self._processes:
            raise SimulationError(f"message to unknown party {recipient}")
        sender_process = self._processes.get(sender)
        if sender_process is not None:
            depth = sender_process.activation_depth + 1
            cause_id = sender_process.activation_msg_id
        else:
            depth, cause_id = 1, None
        message = Message(tag=tag, mtype=mtype, sender=sender,
                          recipient=recipient, payload=payload,
                          msg_id=self._next_msg_id, depth=depth,
                          cause_id=cause_id)
        if wire_size is not None:
            message._wire_size = wire_size
        self._next_msg_id += 1
        if self.chaos is not None:
            for actual in self.chaos.intercept_enqueue(message):
                self._admit(actual)
        else:
            self._admit(message)

    def _admit(self, message: Message) -> None:
        """Place a message into the in-flight bag (post-interception)."""
        self._pending.append(message)
        self.scheduler.note_enqueue(message)
        self.metrics.record(message)
        if self.obs is not None:
            self.obs.on_send(message, self.time,
                             pending=len(self._pending))

    def _fresh_msg_id(self) -> int:
        """Allocate a message identifier (used by the chaos plane for
        duplicate copies, which must stay distinguishable in traces)."""
        msg_id = self._next_msg_id
        self._next_msg_id += 1
        return msg_id

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def undelivered_count(self) -> int:
        """Messages not yet delivered: in flight plus any held back by an
        attached fault injector (delay windows, unhealed partitions)."""
        count = len(self._pending)
        if self.chaos is not None:
            count += self.chaos.held_count
        return count

    # -- event log --------------------------------------------------------------

    def _tick(self) -> int:
        self.time += 1
        return self.time

    def _activation_cause(self, party: PartyId) -> Optional[int]:
        """``msg_id`` of the delivery the party is currently processing."""
        process = self._processes.get(party)
        return process.activation_msg_id if process is not None else None

    def record_input(self, party: PartyId, tag: str, action: str,
                     payload: Tuple[Any, ...]) -> LocalEvent:
        """Log an input action ``(tag, in, action, ...)`` at a party."""
        event = LocalEvent(self._tick(), party, EVENT_INPUT, tag, action,
                           payload, cause_id=self._activation_cause(party))
        self.event_log.append(event)
        if self.obs is not None:
            self.obs.on_input(event)
        return event

    def record_output(self, party: PartyId, tag: str, action: str,
                      payload: Tuple[Any, ...]) -> LocalEvent:
        """Log an output action and notify output observers."""
        event = LocalEvent(self._tick(), party, EVENT_OUTPUT, tag, action,
                           payload, cause_id=self._activation_cause(party))
        self.event_log.append(event)
        if self.obs is not None:
            self.obs.on_output(event)
        for observer in self._output_observers:
            observer(event)
        return event

    def record_chaos(self, party: PartyId, tag: str, action: str,
                     payload: Tuple[Any, ...]) -> LocalEvent:
        """Log an injected fault ``(tag, chaos, action, ...)``.

        Called by an attached fault injector for every injected event, so
        chaos runs carry their full fault schedule in the event log (the
        same log the golden-schedule digests and replay compare).
        """
        event = LocalEvent(self._tick(), party, EVENT_CHAOS, tag, action,
                           payload)
        self.event_log.append(event)
        if self._obs_on_chaos is not None:
            self._obs_on_chaos(event)
        return event

    def add_output_observer(self, observer: OutputObserver) -> None:
        """Subscribe to output actions (used by clients' operation handles
        and by history recorders)."""
        self._output_observers.append(observer)

    def add_invariant(self, check: Callable[["Simulator"], None]) -> None:
        """Register a global invariant, re-checked after every delivery.

        ``check(simulator)`` should raise (e.g. ``AssertionError``) on
        violation.  Invariant hooks make safety properties *continuously*
        checkable in tests, not just at quiescence — a violation is
        caught at the exact delivery that introduced it.
        """
        self._invariants.append(check)

    # -- execution -----------------------------------------------------------------

    def step(self) -> bool:
        """Deliver one message chosen by the scheduler.

        Returns ``False`` when nothing is in flight (including nothing
        held back by an attached fault injector).
        """
        if self.chaos is not None:
            self.chaos.before_choose()
        if not self._pending:
            return False
        index = self.scheduler.choose(self._pending)
        if not 0 <= index < len(self._pending):
            raise SimulationError("scheduler chose an invalid message")
        message = self._pending.pop(index)
        self.scheduler.note_pop(message)
        self._tick()
        if self._record_deliveries:
            self.event_log.append(LocalEvent(
                self.time, message.recipient, EVENT_DELIVER, message.tag,
                message.mtype, message.payload,
                cause_id=message.cause_id))
        if self.obs is not None:
            self.obs.on_deliver(
                message, self.time,
                inbox_depth=len(self._processes[message.recipient].inbox),
                pending=len(self._pending))
        self._processes[message.recipient].receive(message)
        for check in self._invariants:
            check(self)
        if self._obs_on_tick is not None:
            self._obs_on_tick(self.time)
        return True

    def run(self, max_steps: int = 1_000_000) -> int:
        """Deliver messages until quiescence; returns the step count.

        Raises :class:`SimulationError` if the bound is hit — protocols in
        this library quiesce, so hitting the bound means a bug or an
        unbounded Byzantine flood that the experiment should cap itself.
        """
        steps = 0
        while self._pending or (self.chaos is not None
                                and self.chaos.held_count):
            if steps >= max_steps:
                raise SimulationError(
                    f"no quiescence after {max_steps} deliveries")
            self.step()
            steps += 1
        return steps

    def run_until(self, predicate: Callable[[], bool],
                  max_steps: int = 1_000_000) -> int:
        """Deliver messages until ``predicate()`` holds (checked after each
        delivery); returns steps taken.

        Raises :class:`LivenessError` if the network quiesces — every
        message delivered, nothing held back — with the predicate still
        false: the awaited condition can never occur, which earlier
        versions silently reported as success.  Raises
        :class:`SimulationError` if the step bound is exhausted first.
        """
        steps = 0
        while not predicate():
            if not self._pending and (self.chaos is None
                                      or not self.chaos.held_count):
                raise LivenessError(
                    f"network quiesced after {steps} deliveries with the "
                    f"awaited condition still unsatisfied")
            if steps >= max_steps:
                raise SimulationError(
                    f"predicate unsatisfied after {max_steps} deliveries")
            self.step()
            steps += 1
        return steps

    # -- measurements ---------------------------------------------------------------

    def storage_bytes(self) -> int:
        """Total storage complexity across all servers."""
        return sum(process.storage_bytes()
                   for process in self._processes.values()
                   if process.pid.is_server)
