"""Asynchronous Byzantine message-passing simulator (the system model).

Implements Section 2.1 of the paper: parties as processes with
``upon``/``wait for`` thread semantics, secure authenticated channels,
adversary-controlled scheduling with eventual delivery, a logical global
clock, and first-class complexity measurement.
"""

from repro.net.inbox import Inbox
from repro.net.message import (
    EVENT_DELIVER,
    EVENT_INPUT,
    EVENT_OUTPUT,
    LocalEvent,
    Message,
)
from repro.net.metrics import Metrics
from repro.net.process import Process
from repro.net.schedulers import (
    FifoScheduler,
    PartitionScheduler,
    PriorityScheduler,
    RandomScheduler,
    Scheduler,
    SlowPartiesScheduler,
    make_scheduler,
)
from repro.net.simulator import Simulator

__all__ = [
    "Inbox",
    "EVENT_DELIVER",
    "EVENT_INPUT",
    "EVENT_OUTPUT",
    "LocalEvent",
    "Message",
    "Metrics",
    "Process",
    "FifoScheduler",
    "PartitionScheduler",
    "PriorityScheduler",
    "RandomScheduler",
    "Scheduler",
    "SlowPartiesScheduler",
    "make_scheduler",
    "Simulator",
]
