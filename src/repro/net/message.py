"""Protocol messages and local events.

The paper (Section 2.1) distinguishes *local events* — input actions
``(ID, in, type, ...)`` and output actions ``(ID, out, type, ...)`` — from
ordinary protocol messages ``(ID, type, ...)`` delivered to other parties.
Here protocol messages are :class:`Message` values routed through the
simulator, and local events are :class:`LocalEvent` records appended to the
global event log (the paper's implicit global clock).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.common.ids import PartyId
from repro.common.lru import LruCache
from repro.common.serialization import encoded_size

#: Wire sizes memoized by message *content* ``(tag, mtype, payload)``.
#: Broadcast-style protocols send the same payload to all ``n`` servers,
#: so of the ``n`` messages of a round only the first pays the canonical
#: encoding; the rest hit this cache.  Keys are compared by value (never
#: by ``id``), so the cache is deterministic; unhashable payloads (e.g.
#: containing lists) simply bypass it.
_WIRE_SIZE_CACHE = LruCache(capacity=512)


def content_wire_size(tag: str, mtype: str, payload: Tuple[Any, ...]) -> int:
    """Wire size of the canonical encoding of ``(tag, mtype, payload)``.

    Shared by :meth:`Message.wire_size` and by broadcast senders, which
    compute the size once and stamp it onto all ``n`` copies.
    """
    content = (tag, mtype, payload)
    try:
        return _WIRE_SIZE_CACHE.get_or_compute(
            content, lambda: encoded_size(content))
    except TypeError:  # unhashable payload: encode directly
        return encoded_size(content)


class Message:
    """A protocol message ``(ID, type, ...)`` in flight or delivered.

    ``sender`` is set by the channel layer, never by the sending code, so
    Byzantine processes cannot spoof origins (the secure-channel
    authenticity assumption of the model).

    ``depth`` is the message's causal depth: one more than the depth of
    the delivery that triggered its send (0 for sends from fresh client
    invocations).  Since every message in the simulator takes one
    "network delay", the depth at which an operation completes is its
    latency in message rounds — the standard round-trip cost measure for
    asynchronous protocols.

    ``cause_id`` is the ``msg_id`` of the delivery that activated the
    sender when it sent this message (``None`` for spontaneous sends,
    e.g. from a fresh client invocation).  The cause links form a
    happens-before DAG over the whole run; :mod:`repro.obs` walks it
    backward from an operation's completing event to extract the message
    chain that determined the operation's latency.

    Implementation note: this is a hand-written slotted class rather than
    a frozen dataclass because message construction is the single most
    frequent allocation in a run (one per send) and the frozen-dataclass
    ``__init__`` pays an ``object.__setattr__`` call per field.  Treat
    instances as immutable all the same — equality, hashing, and the
    cached wire size all assume fields never change after construction.
    """

    __slots__ = ("tag", "mtype", "sender", "recipient", "payload",
                 "msg_id", "depth", "cause_id", "_wire_size")

    def __init__(self, tag: str, mtype: str, sender: PartyId,
                 recipient: PartyId, payload: Tuple[Any, ...],
                 msg_id: int, depth: int = 0,
                 cause_id: Optional[int] = None) -> None:
        self.tag = tag
        self.mtype = mtype
        self.sender = sender
        self.recipient = recipient
        self.payload = payload
        self.msg_id = msg_id
        self.depth = depth
        self.cause_id = cause_id
        self._wire_size: Optional[int] = None

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Message:
            return NotImplemented
        return (self.msg_id == other.msg_id and self.tag == other.tag
                and self.mtype == other.mtype
                and self.sender == other.sender
                and self.recipient == other.recipient
                and self.payload == other.payload
                and self.depth == other.depth
                and self.cause_id == other.cause_id)

    def __hash__(self) -> int:
        # msg_ids are unique per simulator, so they are a sound (and
        # cheap) hash; equal messages always share one.
        return hash(self.msg_id)

    def __repr__(self) -> str:
        return (f"Message(tag={self.tag!r}, mtype={self.mtype!r}, "
                f"sender={self.sender!r}, recipient={self.recipient!r}, "
                f"payload={self.payload!r}, msg_id={self.msg_id!r}, "
                f"depth={self.depth!r}, cause_id={self.cause_id!r})")

    def wire_size(self) -> int:
        """Bytes on the wire: canonical encoding of (tag, type, payload).

        Sender and recipient are channel addressing, not payload, so they
        are excluded — matching how the paper counts communication
        complexity (bit length of messages associated to an instance).

        The size is computed once per message (the metrics and tracing
        planes both ask for it) and shared across messages with equal
        content via a value-keyed cache.
        """
        size = self._wire_size
        if size is None:
            size = content_wire_size(self.tag, self.mtype, self.payload)
            self._wire_size = size
        return size

    def __str__(self) -> str:  # compact form for traces
        return (f"{self.sender}->{self.recipient} "
                f"({self.tag}, {self.mtype}, ...{len(self.payload)})")


#: Kinds of entries in the global event log.
EVENT_INPUT = "in"
EVENT_OUTPUT = "out"
EVENT_DELIVER = "deliver"
#: A fault injected by the chaos plane (:mod:`repro.chaos`): the event's
#: ``action`` names the fault kind and the payload identifies the
#: affected message, so every injected fault is replayable from the log.
EVENT_CHAOS = "chaos"


@dataclass(frozen=True, slots=True)
class LocalEvent:
    """An entry of the global event log, stamped with the logical time.

    ``kind`` is one of :data:`EVENT_INPUT`, :data:`EVENT_OUTPUT` or
    :data:`EVENT_DELIVER`.  Input/output events carry the paper's action
    type (``write``, ``read``, ``ack``, ``write-accepted``, ...) in
    ``action`` and the action parameters in ``payload``.

    ``cause_id`` is the ``msg_id`` of the delivery being processed when
    the party generated this event (``None`` for events outside any
    activation, e.g. an operation invocation).  For an operation's
    completing output action it anchors the happens-before walk of
    :mod:`repro.obs.critical_path`.
    """

    time: int
    party: PartyId
    kind: str
    tag: str
    action: str
    payload: Tuple[Any, ...]
    cause_id: Optional[int] = None
