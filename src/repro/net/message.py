"""Protocol messages and local events.

The paper (Section 2.1) distinguishes *local events* — input actions
``(ID, in, type, ...)`` and output actions ``(ID, out, type, ...)`` — from
ordinary protocol messages ``(ID, type, ...)`` delivered to other parties.
Here protocol messages are :class:`Message` values routed through the
simulator, and local events are :class:`LocalEvent` records appended to the
global event log (the paper's implicit global clock).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.common.ids import PartyId
from repro.common.serialization import encoded_size


@dataclass(frozen=True)
class Message:
    """A protocol message ``(ID, type, ...)`` in flight or delivered.

    ``sender`` is set by the channel layer, never by the sending code, so
    Byzantine processes cannot spoof origins (the secure-channel
    authenticity assumption of the model).

    ``depth`` is the message's causal depth: one more than the depth of
    the delivery that triggered its send (0 for sends from fresh client
    invocations).  Since every message in the simulator takes one
    "network delay", the depth at which an operation completes is its
    latency in message rounds — the standard round-trip cost measure for
    asynchronous protocols.

    ``cause_id`` is the ``msg_id`` of the delivery that activated the
    sender when it sent this message (``None`` for spontaneous sends,
    e.g. from a fresh client invocation).  The cause links form a
    happens-before DAG over the whole run; :mod:`repro.obs` walks it
    backward from an operation's completing event to extract the message
    chain that determined the operation's latency.
    """

    tag: str
    mtype: str
    sender: PartyId
    recipient: PartyId
    payload: Tuple[Any, ...]
    msg_id: int
    depth: int = 0
    cause_id: Optional[int] = None

    def wire_size(self) -> int:
        """Bytes on the wire: canonical encoding of (tag, type, payload).

        Sender and recipient are channel addressing, not payload, so they
        are excluded — matching how the paper counts communication
        complexity (bit length of messages associated to an instance).
        """
        return encoded_size((self.tag, self.mtype, self.payload))

    def __str__(self) -> str:  # compact form for traces
        return (f"{self.sender}->{self.recipient} "
                f"({self.tag}, {self.mtype}, ...{len(self.payload)})")


#: Kinds of entries in the global event log.
EVENT_INPUT = "in"
EVENT_OUTPUT = "out"
EVENT_DELIVER = "deliver"


@dataclass(frozen=True)
class LocalEvent:
    """An entry of the global event log, stamped with the logical time.

    ``kind`` is one of :data:`EVENT_INPUT`, :data:`EVENT_OUTPUT` or
    :data:`EVENT_DELIVER`.  Input/output events carry the paper's action
    type (``write``, ``read``, ``ack``, ``write-accepted``, ...) in
    ``action`` and the action parameters in ``payload``.

    ``cause_id`` is the ``msg_id`` of the delivery being processed when
    the party generated this event (``None`` for events outside any
    activation, e.g. an operation invocation).  For an operation's
    completing output action it anchors the happens-before walk of
    :mod:`repro.obs.critical_path`.
    """

    time: int
    party: PartyId
    kind: str
    tag: str
    action: str
    payload: Tuple[Any, ...]
    cause_id: Optional[int] = None
