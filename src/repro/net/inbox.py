"""Per-process input buffer, queryable by wait-state conditions.

The paper's parties enter wait states whose conditions are predicates over
the received messages in the input buffer (e.g. "wait for ``n - t``
messages ``(ID, ack, oid)`` from distinct servers").  :class:`Inbox` stores
everything a process has received, indexed by ``(tag, mtype)``, and offers
the query helpers those conditions need.

Byzantine parties may send the same message many times; quorum conditions
therefore always count *distinct senders*, mirroring the proofs.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.common.ids import PartyId
from repro.net.message import Message

Predicate = Callable[[Message], bool]


class Inbox:
    """All messages a process has received, grouped by ``(tag, mtype)``."""

    def __init__(self) -> None:
        self._by_key: Dict[Tuple[str, str], List[Message]] = defaultdict(list)
        self._count = 0

    def add(self, message: Message) -> None:
        """Buffer a delivered message."""
        self._by_key[(message.tag, message.mtype)].append(message)
        self._count += 1

    def __len__(self) -> int:
        return self._count

    def depth_by_key(self) -> Dict[Tuple[str, str], int]:
        """Buffered message count per ``(tag, mtype)`` key, in insertion
        order — the queue-depth breakdown the observability plane samples
        (messages are buffered forever, so depths are cumulative)."""
        return {key: len(found) for key, found in self._by_key.items()}

    def messages(self, tag: str, mtype: str,
                 where: Optional[Predicate] = None) -> List[Message]:
        """All received messages with this tag and type, oldest first."""
        found = self._by_key.get((tag, mtype), [])
        if where is None:
            return list(found)
        return [message for message in found if where(message)]

    def senders(self, tag: str, mtype: str,
                where: Optional[Predicate] = None) -> Set[PartyId]:
        """Distinct senders of matching messages."""
        return {message.sender
                for message in self.messages(tag, mtype, where)}

    def count_distinct(self, tag: str, mtype: str,
                       where: Optional[Predicate] = None) -> int:
        """Number of distinct senders of matching messages."""
        return len(self.senders(tag, mtype, where))

    def first_per_sender(self, tag: str, mtype: str,
                         where: Optional[Predicate] = None) -> List[Message]:
        """The earliest matching message from each distinct sender.

        Quorum conditions that then *use* the message contents (e.g. "the
        maximum timestamp among ``n - t`` received ``ts`` messages") take
        one message per sender so a Byzantine flood cannot pad a quorum.
        """
        seen: Set[PartyId] = set()
        result: List[Message] = []
        for message in self.messages(tag, mtype, where):
            if message.sender not in seen:
                seen.add(message.sender)
                result.append(message)
        return result
