"""Message-delivery schedulers: the adversary's control over asynchrony.

In the model, the adversary schedules message delivery arbitrarily, subject
only to *eventual delivery* (every run is complete).  A scheduler picks
which in-flight message the simulator delivers next; since schedulers can
only choose among pending messages and the simulator runs until the pending
set drains, eventual delivery holds for every scheduler here by
construction.

Deterministic seeds make every schedule reproducible, so a failing schedule
found by a property test can be replayed exactly.
"""

from __future__ import annotations

import random
from typing import Callable, Optional, Sequence

from repro.net.message import Message


class Scheduler:
    """Strategy interface: choose the index of the next message."""

    def choose(self, pending: Sequence[Message]) -> int:
        """Return the index (into ``pending``) of the message to deliver
        next; the simulator pops and delivers it."""
        raise NotImplementedError

    def note_enqueue(self, message: Message) -> None:
        """Hook: the simulator enqueued ``message`` into the pending bag.

        Stateful schedulers override this (with :meth:`note_pop`) to
        maintain their view of the pending set incrementally instead of
        rescanning it on every :meth:`choose`.  The default is a no-op,
        so schedulers remain usable standalone against plain lists.
        """

    def note_pop(self, message: Message) -> None:
        """Hook: the simulator removed ``message`` from the pending bag."""


class FifoScheduler(Scheduler):
    """Deliver messages in global send order (the 'synchronous-looking'
    schedule; useful as a baseline and for debugging)."""

    def choose(self, pending: Sequence[Message]) -> int:
        return 0


class RandomScheduler(Scheduler):
    """Deliver a uniformly random pending message (asynchrony with
    arbitrary reordering).  Deterministic given the seed."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def choose(self, pending: Sequence[Message]) -> int:
        return self._rng.randrange(len(pending))


class PriorityScheduler(Scheduler):
    """Adversarial scheduler: starve messages matching ``deprioritize``.

    Matching messages are delivered only when nothing else is pending, which
    models an adversary that delays a victim's traffic as long as the
    network allows while still satisfying eventual delivery.

    The preferred/deprioritized partition is maintained *incrementally*:
    each message is classified once, when the simulator enqueues it, and
    counters track how many of each class are pending.  ``choose`` then
    draws the same random rank the full-rescan implementation would and
    only walks the bag far enough to locate that rank — with cached
    per-message classifications instead of fresh predicate calls.  The
    RNG consumption and the chosen indices are identical to the original
    rescanning implementation for every seed.
    """

    def __init__(self, deprioritize: Callable[[Message], bool],
                 seed: int = 0):
        self._deprioritize = deprioritize
        self._rng = random.Random(seed)
        #: msg_id -> classification (True = deprioritized), filled on
        #: enqueue and dropped on pop, so it tracks exactly the pending
        #: set when driven by a simulator.
        self._classes: dict = {}
        #: msg_ids counted into the pending counters by
        #: :meth:`note_enqueue`.  Standalone :meth:`choose` calls also
        #: memoize classifications into ``_classes``, so ``note_pop``
        #: must only decrement for messages it actually counted — a
        #: mixed standalone/simulator user would otherwise drive
        #: ``_pending_total`` negative and permanently disable the
        #: incremental fast path.
        self._noted: set = set()
        self._pending_total = 0
        self._pending_preferred = 0
        self._tracking = False

    def _classify(self, message: Message) -> bool:
        flag = self._classes.get(message.msg_id)
        if flag is None:
            flag = bool(self._deprioritize(message))
            self._classes[message.msg_id] = flag
        return flag

    def note_enqueue(self, message: Message) -> None:
        self._tracking = True
        self._noted.add(message.msg_id)
        if not self._classify(message):
            self._pending_preferred += 1
        self._pending_total += 1

    def note_pop(self, message: Message) -> None:
        flag = self._classes.pop(message.msg_id, None)
        if message.msg_id not in self._noted:
            return  # classified standalone, never counted as pending
        self._noted.discard(message.msg_id)
        if flag is False:
            self._pending_preferred -= 1
        self._pending_total -= 1

    def choose(self, pending: Sequence[Message]) -> int:
        total = len(pending)
        if self._tracking and self._pending_total == total:
            preferred = self._pending_preferred
            if preferred == 0 or preferred == total:
                # Nothing to starve (or everything starved): uniform
                # draw over the whole bag, exactly as the rescan did.
                return self._rng.randrange(total)
            rank = self._rng.randrange(preferred)
            for index, message in enumerate(pending):
                if not self._classes[message.msg_id]:
                    if rank == 0:
                        return index
                    rank -= 1
            raise RuntimeError(
                "pending partition counters out of sync")  # pragma: no cover
        # Standalone use (no simulator feeding note_enqueue): fall back
        # to the full scan, still memoizing classifications.
        preferred_indices = [index for index, message in enumerate(pending)
                             if not self._classify(message)]
        if preferred_indices:
            return preferred_indices[
                self._rng.randrange(len(preferred_indices))]
        return self._rng.randrange(total)


class SlowPartiesScheduler(PriorityScheduler):
    """Starve all traffic to and from a set of victim parties."""

    def __init__(self, slow_parties, seed: int = 0):
        slow = set(slow_parties)

        def is_slow(message: Message) -> bool:
            return message.sender in slow or message.recipient in slow

        super().__init__(is_slow, seed=seed)


class PartitionScheduler(Scheduler):
    """A temporary network partition that later heals.

    Until ``heal_after`` delivery decisions have been made, messages
    crossing the partition (between ``group`` and its complement) are
    starved; afterwards the network behaves like a seeded random
    scheduler.  Eventual delivery still holds — the partition is
    transient, as the model requires (a permanent partition would violate
    run completeness).
    """

    def __init__(self, group, heal_after: int, seed: int = 0):
        self._group = set(group)
        self._heal_after = heal_after
        self._decisions = 0
        self._rng = random.Random(seed)

    @property
    def healed(self) -> bool:
        return self._decisions >= self._heal_after

    def _crosses(self, message: Message) -> bool:
        return (message.sender in self._group) != \
            (message.recipient in self._group)

    def choose(self, pending: Sequence[Message]) -> int:
        self._decisions += 1
        if not self.healed:
            within = [index for index, message in enumerate(pending)
                      if not self._crosses(message)]
            if within:
                return within[self._rng.randrange(len(within))]
        return self._rng.randrange(len(pending))


def make_scheduler(name: str, seed: int = 0,
                   deprioritize: Optional[Callable[[Message], bool]] = None,
                   slow_parties=None, group=None,
                   heal_after: Optional[int] = None) -> Scheduler:
    """Factory used by experiment configs and the chaos campaign runner.

    ``name`` selects the strategy; strategy-specific parameters are
    keyword-only in spirit:

    * ``"fifo"`` / ``"random"`` — no extra parameters (``seed`` for
      ``random``);
    * ``"priority"`` — requires ``deprioritize``, a predicate naming the
      starved messages;
    * ``"slow-parties"`` — requires ``slow_parties``, the set of
      :class:`~repro.common.ids.PartyId` victims whose traffic is
      starved;
    * ``"partition"`` — requires ``group`` (the partitioned party set)
      and ``heal_after`` (delivery decisions until the partition heals;
      mandatory, since a permanent partition would violate eventual
      delivery).
    """
    if name == "fifo":
        return FifoScheduler()
    if name == "random":
        return RandomScheduler(seed)
    if name == "priority":
        if deprioritize is None:
            raise ValueError("priority scheduler needs a deprioritize rule")
        return PriorityScheduler(deprioritize, seed)
    if name == "slow-parties":
        if slow_parties is None:
            raise ValueError(
                "slow-parties scheduler needs the victim party set")
        return SlowPartiesScheduler(slow_parties, seed=seed)
    if name == "partition":
        if group is None or heal_after is None:
            raise ValueError(
                "partition scheduler needs a party group and a "
                "heal_after bound (partitions must heal)")
        return PartitionScheduler(group, heal_after=heal_after, seed=seed)
    raise ValueError(f"unknown scheduler {name!r}")
