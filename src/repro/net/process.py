"""Party processes with the paper's thread and wait-state semantics.

A party (Section 2.1) is activated when a message is delivered to it.  Its
threads are either running or parked in *wait states* — conditions over the
input buffer.  When activated, the party runs every thread whose condition
is satisfied until no thread can make progress, then control returns to the
adversary (the simulator's scheduler).

Handlers — the paper's ``upon <condition>`` clauses — are plain callables
or generator functions.  A generator handler implements ``wait for`` by
yielding 0-argument *condition* callables: the process parks the thread and
resumes it, with the condition's return value, once the condition evaluates
truthy.  This is a direct transcription of the pseudo-code, e.g.::

    def _write(self, tag, oid, value):            # client C_i
        ...
        quorum = yield self.condition_quorum(tag, "ack", self.n - self.t)
        self.output(tag, "ack", oid, value)

Local per-thread variables are generator locals; instance attributes are
the paper's per-instance global variables.
"""

from __future__ import annotations

from types import GeneratorType
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.common.errors import SimulationError
from repro.common.ids import PartyId
from repro.net.inbox import Inbox
from repro.net.message import Message, content_wire_size

Condition = Callable[[], Any]
Handler = Callable[[Message], Any]


class _Thread:
    """A parked protocol thread: a generator plus its wait condition."""

    __slots__ = ("generator", "condition")

    def __init__(self, generator: Generator, condition: Condition):
        self.generator = generator
        self.condition = condition


class Process:
    """Base class for all parties (servers, clients, Byzantine variants).

    Subclasses register per-message-type handlers with :meth:`on` and use
    :meth:`send` / :meth:`send_to_servers` / :meth:`output`.  The simulator
    wires itself in via :meth:`bind`.
    """

    def __init__(self, pid: PartyId):
        self.pid = pid
        self.inbox = Inbox()
        self.simulator = None  # set by Simulator.add_process
        self._handlers: Dict[str, List[Handler]] = {}
        self._threads: List[_Thread] = []
        self._pumping = False
        #: causal depth of the delivery currently being processed (0 when
        #: activated directly, e.g. by a client invocation).
        self.activation_depth = 0
        #: ``msg_id`` of the delivery currently being processed (``None``
        #: when activated directly); stamped onto outgoing messages and
        #: output actions as their happens-before cause.
        self.activation_msg_id: Optional[int] = None

    # -- simulator wiring -------------------------------------------------

    def bind(self, simulator) -> None:
        """Attach this party to a simulator (done by ``add_process``)."""
        self.simulator = simulator

    def _require_simulator(self):
        if self.simulator is None:
            raise SimulationError(
                f"{self.pid} is not attached to a simulator")
        return self.simulator

    # -- sending ----------------------------------------------------------

    def send(self, recipient: PartyId, tag: str, mtype: str,
             *payload: Any) -> None:
        """Send ``(tag, mtype, payload)`` to one party over the secure
        channel (sender identity is bound by the channel)."""
        self._require_simulator().enqueue(
            sender=self.pid, recipient=recipient, tag=tag, mtype=mtype,
            payload=payload)

    def send_to_servers(self, tag: str, mtype: str, *payload: Any) -> None:
        """Send the same message to every server ``P_1 .. P_n``.

        All ``n`` messages share one payload tuple and a wire size
        computed once, so the per-message cost is one enqueue;
        content-keyed caches (canonical encoding) then make the copies
        nearly free downstream.
        """
        simulator = self._require_simulator()
        pid = self.pid
        size = content_wire_size(tag, mtype, payload)
        for server in simulator.server_pids:
            simulator.enqueue(sender=pid, recipient=server, tag=tag,
                              mtype=mtype, payload=payload, wire_size=size)

    # -- handlers and threads ----------------------------------------------

    def on(self, mtype: str, handler: Handler) -> None:
        """Register an ``upon receiving (_, mtype, ...)`` handler.

        Plain callables run to completion; generator functions become
        threads that may enter wait states.
        """
        self._handlers.setdefault(mtype, []).append(handler)

    def start_thread(self, generator: Generator) -> None:
        """Start a protocol thread, running it until its first wait state."""
        self._advance(generator, None)
        self._pump()

    def _advance(self, generator: Generator, value: Any) -> None:
        """Resume ``generator`` with ``value``; park it again if it yields."""
        try:
            condition = generator.send(value)
        except StopIteration:
            return
        while True:
            if not callable(condition):
                raise SimulationError(
                    f"{self.pid}: threads must yield callables, "
                    f"got {condition!r}")
            result = condition()
            if not result:
                self._threads.append(_Thread(generator, condition))
                return
            try:
                condition = generator.send(result)
            except StopIteration:
                return

    # -- activation ---------------------------------------------------------

    def receive(self, message: Message) -> None:
        """Deliver a message: buffer it, fire handlers, pump threads."""
        self.inbox.add(message)
        self.activation_depth = message.depth
        self.activation_msg_id = message.msg_id
        try:
            handlers = self._handlers.get(message.mtype)
            if handlers is not None:
                for handler in handlers:
                    result = handler(message)
                    if type(result) is GeneratorType:
                        self._advance(result, None)
            self._pump()
        finally:
            self.activation_depth = 0
            self.activation_msg_id = None

    def _pump(self) -> None:
        """Resume parked threads until no condition is satisfied.

        Re-entrant calls (a resumed thread starting another thread, which
        calls back into the pump) are absorbed by the guard: the outermost
        pump keeps looping until quiescence, so nothing is missed and the
        parked-thread list is never mutated under a stale snapshot.
        """
        if self._pumping or not self._threads:
            return
        self._pumping = True
        try:
            progress = True
            while progress:
                progress = False
                for thread in list(self._threads):
                    if thread not in self._threads:
                        continue  # resumed by a nested _advance already
                    result = thread.condition()
                    if result:
                        self._threads.remove(thread)
                        progress = True
                        self._advance(thread.generator, result)
        finally:
            self._pumping = False

    # -- local events ---------------------------------------------------------

    def output(self, tag: str, action: str, *payload: Any) -> None:
        """Generate an output action ``(tag, out, action, payload)``."""
        self._require_simulator().record_output(self.pid, tag, action,
                                                tuple(payload))

    def record_input(self, tag: str, action: str, *payload: Any) -> None:
        """Record an input action ``(tag, in, action, payload)``."""
        self._require_simulator().record_input(self.pid, tag, action,
                                               tuple(payload))

    def note_verification_failure(self, tag: str, mtype: str,
                                  suspect: "PartyId") -> None:
        """Report a failed cryptographic check on traffic from ``suspect``
        to an attached tracer.

        Measurement-only: no event is logged and the clock does not
        tick, so instrumented protocols keep byte-identical schedules.
        A well-formed message whose commitment/signature verification
        fails is the strongest per-server Byzantine signal the health
        plane consumes — honest servers never produce one.
        """
        observer = getattr(self.simulator, "obs", None)
        if observer is None:
            return
        hook = getattr(observer, "on_verify_fail", None)
        if hook is not None:
            hook(self.pid, suspect, tag, mtype)

    # -- wait-state condition builders ------------------------------------------

    def condition_quorum(self, tag: str, mtype: str, count: int,
                         where: Optional[Callable[[Message], bool]] = None
                         ) -> Condition:
        """Condition: ``count`` messages from distinct senders; returns the
        earliest matching message of each sender.

        When a tracer is attached to the simulator (:mod:`repro.obs`),
        the first satisfaction is reported as a quorum release carrying
        the arrival that tipped the threshold — the ``(n - t)``-th
        message the wait state was actually blocked on.
        """
        released = False

        def check():
            nonlocal released
            matching = self.inbox.first_per_sender(tag, mtype, where)
            if len(matching) >= count:
                if not released:
                    released = True
                    self._notify_quorum_release(tag, mtype, count, matching)
                return matching
            return None

        return check

    def _notify_quorum_release(self, tag: str, mtype: str, count: int,
                               matching: List[Message]) -> None:
        """Report a satisfied quorum condition to an attached tracer."""
        simulator = self.simulator
        observer = getattr(simulator, "obs", None)
        if observer is None:
            return
        observer.on_quorum(
            time=simulator.time, party=self.pid, tag=tag, mtype=mtype,
            threshold=count,
            quorum_msg_ids=tuple(m.msg_id for m in matching),
            releasing_msg_id=self.activation_msg_id)

    def condition_message(self, tag: str, mtype: str,
                          where: Optional[Callable[[Message], bool]] = None
                          ) -> Condition:
        """Condition: at least one matching message; returns the first."""

        def check():
            matching = self.inbox.messages(tag, mtype, where)
            return matching[0] if matching else None

        return check

    # -- introspection ----------------------------------------------------------

    @property
    def parked_threads(self) -> int:
        """Number of threads currently in a wait state."""
        return len(self._threads)

    def storage_bytes(self) -> int:
        """Size of this party's protocol global variables (storage
        complexity).  Overridden by servers; clients report zero because
        the paper does not count client memory."""
        return 0

    def __str__(self) -> str:
        return str(self.pid)
