"""Measurement plane: message, communication, and storage complexity.

Section 2.1 of the paper defines, per protocol instance:

* **message complexity** — the number of messages associated to the
  instance;
* **communication complexity** — the bit length of all such messages;
* **storage complexity** — the size of the instance's global variables.

Tags are hierarchical (``ID|disp.oid7`` is a sub-instance of ``ID``), so
querying by a tag prefix aggregates an instance together with all its
sub-protocol instances — e.g. a write's Disperse and reliable-broadcast
traffic counts toward the register instance.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.common.ids import TAG_SEP, PartyId
from repro.net.message import Message


@dataclass
class TrafficCounter:
    """Message count and byte volume for one exact tag."""

    messages: int = 0
    message_bytes: int = 0
    by_mtype: Dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def record(self, message: Message) -> None:
        """Count one message against this tag."""
        self.record_sized(message, message.wire_size())

    def record_sized(self, message: Message, size: int) -> None:
        """Count one message whose wire size the caller already knows."""
        self.messages += 1
        self.message_bytes += size
        self.by_mtype[message.mtype] += 1


class MetricsScope:
    """Context manager isolating the traffic of one code region.

    Entering snapshots the metrics; exiting stores the delta on the
    scope itself, so callers read ``scope.messages`` /
    ``scope.message_bytes`` after the ``with`` block::

        with metrics.scoped() as scope:
            cluster.write(1, "reg", "w", value)
            cluster.run()
        print(scope.messages, scope.message_bytes)

    This replaces manual snapshot subtraction around single operations
    (the paper's per-instance complexity measurements).
    """

    def __init__(self, metrics: "Metrics"):
        self._metrics = metrics
        self._before: Optional[Tuple[int, int]] = None
        self.messages = 0
        self.message_bytes = 0

    def __enter__(self) -> "MetricsScope":
        self._before = self._metrics.snapshot()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        after_messages, after_bytes = self._metrics.snapshot()
        before_messages, before_bytes = self._before
        self.messages = after_messages - before_messages
        self.message_bytes = after_bytes - before_bytes
        return None


class Metrics:
    """Aggregated traffic counters for a simulation run."""

    def __init__(self) -> None:
        self._by_tag: Dict[str, TrafficCounter] = defaultdict(TrafficCounter)
        self._sent_bytes: Dict[PartyId, int] = defaultdict(int)
        self._received_bytes: Dict[PartyId, int] = defaultdict(int)
        self.total_messages = 0
        self.total_bytes = 0

    def record(self, message: Message) -> None:
        """Account one sent message (called by the simulator)."""
        size = message.wire_size()
        self._by_tag[message.tag].record_sized(message, size)
        self._sent_bytes[message.sender] += size
        self._received_bytes[message.recipient] += size
        self.total_messages += 1
        self.total_bytes += size

    def _matching(self, tag_prefix: str):
        for tag, counter in self._by_tag.items():
            if tag == tag_prefix or tag.startswith(tag_prefix + TAG_SEP):
                yield tag, counter

    def message_complexity(self, tag_prefix: str) -> int:
        """Messages associated with a tag and all of its sub-instances."""
        return sum(counter.messages
                   for _, counter in self._matching(tag_prefix))

    def communication_complexity(self, tag_prefix: str) -> int:
        """Bytes of all messages under a tag prefix."""
        return sum(counter.message_bytes
                   for _, counter in self._matching(tag_prefix))

    def messages_by_mtype(self, tag_prefix: str) -> Dict[str, int]:
        """Per-message-type counts under a tag prefix (for diagnostics)."""
        result: Dict[str, int] = defaultdict(int)
        for _, counter in self._matching(tag_prefix):
            for mtype, count in counter.by_mtype.items():
                result[mtype] += count
        return dict(result)

    def snapshot(self) -> Tuple[int, int]:
        """``(total_messages, total_bytes)`` so far — subtract two
        snapshots to isolate one operation's traffic."""
        return (self.total_messages, self.total_bytes)

    def scoped(self) -> MetricsScope:
        """A :class:`MetricsScope` capturing the delta of a ``with``
        block — the snapshot-subtraction idiom as a context manager."""
        return MetricsScope(self)

    def sent_bytes(self, party: PartyId) -> int:
        """Bytes sent by one party across the whole run."""
        return self._sent_bytes.get(party, 0)

    def received_bytes(self, party: PartyId) -> int:
        """Bytes delivered to one party across the whole run."""
        return self._received_bytes.get(party, 0)

    def load_imbalance(self, parties: Iterable[PartyId]) -> float:
        """Max/mean ratio of per-party received bytes (1.0 = perfectly
        balanced).  The register protocols are leaderless: server load is
        expected to be near-uniform."""
        loads = [self._received_bytes.get(party, 0) for party in parties]
        mean = sum(loads) / len(loads) if loads else 0
        return max(loads) / mean if mean else 1.0
