"""Command-line interface: simulate workloads and run experiments.

Usage::

    python -m repro.cli simulate --protocol atomic_ns --n 4 --t 1 \
        --writes 3 --reads 3 --seed 7 --trace
    python -m repro.cli experiments --fast
    python -m repro.cli experiments t1 f4 f6
    python -m repro.cli info --n 7 --t 2
    python -m repro.cli lint src/repro --format json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.history import HistoryRecorder
from repro.analysis.trace import (
    operation_summary,
    traffic_summary,
)
from repro.cluster import PROTOCOLS, build_cluster
from repro.config import SystemConfig
from repro.net.schedulers import RandomScheduler
from repro.workloads.generator import random_workload, run_workload

_EXPERIMENTS = {
    "t1": "comparison_table",
    "t2": "complexity_table",
    "f1": "storage_blowup",
    "f2": "communication_sweep",
    "f3": "message_complexity",
    "f4": "timestamp_attack",
    "f5": "resilience_matrix",
    "f6": "poisonous_writes",
    "f7": "concurrency_sweep",
    "f8": "threshold_bench",
    "f9": "listeners_ablation",
    "f10": "latency_rounds",
    "f11": "scheduler_sensitivity",
    "f12": "broadcast_comparison",
    "f13": "consensus_comparison",
}


def _cmd_simulate(args: argparse.Namespace) -> int:
    config = SystemConfig(n=args.n, t=args.t, k=args.k,
                          commitment=args.commitment, seed=args.seed)
    cluster = build_cluster(config, protocol=args.protocol,
                            num_clients=args.clients,
                            scheduler=RandomScheduler(args.seed))
    operations = random_workload(args.clients, writes=args.writes,
                                 reads=args.reads, seed=args.seed,
                                 value_size=args.value_size)
    run_workload(cluster, "reg", operations, seed=args.seed)
    order = HistoryRecorder(cluster, "reg").check()
    print(f"protocol={args.protocol} n={args.n} t={args.t} "
          f"k={config.k} seed={args.seed}")
    print(f"operations: {args.writes} writes + {args.reads} reads, "
          f"all terminated, history linearizable")
    print(f"witness linearization: {' < '.join(order)}")
    print(traffic_summary(cluster.simulator.metrics, "reg"))
    if args.trace:
        print("\noperations:")
        print(operation_summary(cluster.simulator.event_log))
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    names = [name.lower() for name in args.names] or list(_EXPERIMENTS)
    unknown = [name for name in names if name not in _EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; "
              f"choose from {sorted(_EXPERIMENTS)}", file=sys.stderr)
        return 2
    if set(names) == set(_EXPERIMENTS) and not args.names:
        from repro.experiments import run_all
        run_all.main(["--fast"] if args.fast else [])
        # run_all covers T1-F8; the ablation/latency extras
        # (F9-F13) are printed separately below.
        names = ["f9", "f10", "f11", "f12", "f13"]
    import importlib
    for name in names:
        module = importlib.import_module(
            f"repro.experiments.{_EXPERIMENTS[name]}")
        print(f"\n=== {name.upper()} " + "=" * 40)
        module.main()
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.analysis.complexity import ComplexityModel
    model = ComplexityModel(n=args.n, t=args.t, k=args.k,
                            value_size=args.value_size)
    print(f"deployment n={args.n} t={args.t} k={model.k} "
          f"|F|={args.value_size} B")
    print(f"quorum (n-t): {args.n - args.t}, "
          f"deliver quorum (2t+1): {2 * args.t + 1}")
    for name, prediction in model.all_protocols().items():
        print(f"  {name:<11} {prediction.resilience:<7} "
              f"blow-up {prediction.storage_blowup:6.2f}x  "
              f"write ~{prediction.write_messages} msgs / "
              f"{prediction.write_bytes} B  "
              f"read ~{prediction.read_messages} msgs / "
              f"{prediction.read_bytes} B")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.runner import run_from_args
    return run_from_args(args)


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    commands = parser.add_subparsers(dest="command", required=True)

    simulate = commands.add_parser(
        "simulate", help="run a random workload on a simulated cluster")
    simulate.add_argument("--protocol", default="atomic_ns",
                          choices=sorted(PROTOCOLS))
    simulate.add_argument("--n", type=int, default=4)
    simulate.add_argument("--t", type=int, default=1)
    simulate.add_argument("--k", type=int, default=None)
    simulate.add_argument("--commitment", default="vector",
                          choices=["vector", "merkle"])
    simulate.add_argument("--clients", type=int, default=2)
    simulate.add_argument("--writes", type=int, default=3)
    simulate.add_argument("--reads", type=int, default=3)
    simulate.add_argument("--value-size", type=int, default=256)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--trace", action="store_true",
                          help="print the per-operation timeline")
    simulate.set_defaults(handler=_cmd_simulate)

    experiments = commands.add_parser(
        "experiments", help="run evaluation experiments (T1-T2, F1-F13)")
    experiments.add_argument("names", nargs="*",
                             help="experiment ids (default: all)")
    experiments.add_argument("--fast", action="store_true")
    experiments.set_defaults(handler=_cmd_experiments)

    info = commands.add_parser(
        "info", help="print analytic predictions for a deployment")
    info.add_argument("--n", type=int, default=4)
    info.add_argument("--t", type=int, default=1)
    info.add_argument("--k", type=int, default=None)
    info.add_argument("--value-size", type=int, default=4096)
    info.set_defaults(handler=_cmd_info)

    from repro.lint.runner import add_lint_arguments
    lint = commands.add_parser(
        "lint", help="protocol-aware static analysis (determinism, "
                     "quorum arithmetic, wire/handler completeness)")
    add_lint_arguments(lint)
    lint.set_defaults(handler=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
