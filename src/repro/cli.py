"""Command-line interface: simulate workloads and run experiments.

Usage::

    python -m repro.cli simulate --protocol atomic_ns --n 4 --t 1 \
        --writes 3 --reads 3 --seed 7 --trace
    python -m repro.cli trace --protocol atomic --format perfetto \
        --out trace.json
    python -m repro.cli experiments --fast --bench-dir out/
    python -m repro.cli experiments t1 f4 f6
    python -m repro.cli info --n 7 --t 2
    python -m repro.cli chaos --seeds 3 --boundary \
        --out chaos-report.json --reproducer-dir reproducers/
    python -m repro.cli chaos --replay reproducers/chaos_atomic_ns_boundary_s0.json
    python -m repro.cli lint src/repro --format json
    python -m repro.cli lint src/repro --sarif out.sarif \
        --baseline benchmarks/LINT_baseline.json
    python -m repro.cli bench --label mine --out benchmarks \
        --compare benchmarks/BENCH_baseline_perf.json
    python -m repro.cli bench --quick --compare \
        benchmarks/BENCH_baseline_perf.json --check --tolerance 30
    python -m repro.cli monitor --source simulate --plan delays
    python -m repro.cli monitor --source chaos --seeds 2 \
        --out benchmarks --label health_baseline
    python -m repro.cli monitor --source kv-bench --shards 4 \
        --html health.html --prom health.prom
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.analysis.history import HistoryRecorder
from repro.analysis.trace import (
    export_events_jsonl,
    operation_summary,
    traffic_summary,
)
from repro.cluster import PROTOCOLS, build_cluster
from repro.config import SystemConfig
from repro.net.schedulers import RandomScheduler
from repro.obs import (
    BENCH_ENV,
    TraceRecorder,
    export_perfetto,
    export_trace_jsonl,
    operation_breakdown_lines,
    text_report,
)
from repro.workloads.generator import random_workload, run_workload
from repro.workloads.kv import DEFAULT_SHIFT_EVERY, DISTRIBUTIONS

_EXPERIMENTS = {
    "t1": "comparison_table",
    "t2": "complexity_table",
    "f1": "storage_blowup",
    "f2": "communication_sweep",
    "f3": "message_complexity",
    "f4": "timestamp_attack",
    "f5": "resilience_matrix",
    "f6": "poisonous_writes",
    "f7": "concurrency_sweep",
    "f8": "threshold_bench",
    "f9": "listeners_ablation",
    "f10": "latency_rounds",
    "f11": "scheduler_sensitivity",
    "f12": "broadcast_comparison",
    "f13": "consensus_comparison",
}


def _traced_run(args: argparse.Namespace) -> tuple:
    """Build a cluster with a tracer attached, run the random workload,
    and return ``(cluster, recorder)``."""
    k = args.k
    if k is None and args.protocol == "atomic_md":
        # the metadata/data separation needs k <= n - 2t; mirror the
        # campaign/kv-bench default rather than rejecting the run
        k = args.t + 1
    config = SystemConfig(n=args.n, t=args.t, k=k,
                          commitment=args.commitment, seed=args.seed)
    cluster = build_cluster(config, protocol=args.protocol,
                            num_clients=args.clients,
                            scheduler=RandomScheduler(args.seed))
    recorder = TraceRecorder()
    recorder.attach(cluster.simulator)
    operations = random_workload(args.clients, writes=args.writes,
                                 reads=args.reads, seed=args.seed,
                                 value_size=args.value_size)
    run_workload(cluster, "reg", operations, seed=args.seed)
    return cluster, recorder


def _cmd_simulate(args: argparse.Namespace) -> int:
    cluster, recorder = _traced_run(args)
    order = HistoryRecorder(cluster, "reg").check()
    print(f"protocol={args.protocol} n={args.n} t={args.t} "
          f"k={cluster.config.k} seed={args.seed}")
    print(f"operations: {args.writes} writes + {args.reads} reads, "
          f"all terminated, history linearizable")
    print(f"witness linearization: {' < '.join(order)}")
    print(traffic_summary(cluster.simulator.metrics, "reg"))
    print("\nlatency attribution (logical ticks on the critical path):")
    for line in operation_breakdown_lines(recorder):
        print(f"  {line}")
    if args.trace:
        print("\noperations:")
        print(operation_summary(cluster.simulator.event_log))
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as stream:
            count = export_events_jsonl(cluster.simulator.event_log,
                                        stream)
        print(f"\nwrote {count} events to {args.trace_out}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    cluster, recorder = _traced_run(args)
    HistoryRecorder(cluster, "reg").check()
    if args.out:
        stream = open(args.out, "w", encoding="utf-8")
    else:
        stream = sys.stdout
    try:
        if args.format == "perfetto":
            count = export_perfetto(recorder, stream)
            what = f"{count} trace events"
        elif args.format == "jsonl":
            count = export_trace_jsonl(recorder, stream)
            what = f"{count} trace lines"
        else:
            stream.write(text_report(recorder))
            stream.write("\n")
            what = "text report"
    finally:
        if args.out:
            stream.close()
    if args.out:
        print(f"wrote {what} ({args.format}) to {args.out}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    if args.bench_dir:
        os.makedirs(args.bench_dir, exist_ok=True)
        os.environ[BENCH_ENV] = args.bench_dir
    names = [name.lower() for name in args.names] or list(_EXPERIMENTS)
    unknown = [name for name in names if name not in _EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; "
              f"choose from {sorted(_EXPERIMENTS)}", file=sys.stderr)
        return 2
    if set(names) == set(_EXPERIMENTS) and not args.names:
        from repro.experiments import run_all
        run_all.main(["--fast"] if args.fast else [])
        # run_all covers T1-F8; the ablation/latency extras
        # (F9-F13) are printed separately below.
        names = ["f9", "f10", "f11", "f12", "f13"]
    import importlib
    for name in names:
        module = importlib.import_module(
            f"repro.experiments.{_EXPERIMENTS[name]}")
        print(f"\n=== {name.upper()} " + "=" * 40)
        module.main()
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import dataclasses
    import json

    from repro.obs.bench import (
        compare_rows,
        emit_bench,
        regressions,
        run_lint_benchmarks,
        run_macro_benchmarks,
        run_micro_benchmarks,
    )

    if args.check and not args.compare:
        print("--check requires --compare BASELINE", file=sys.stderr)
        return 2

    suites = []
    if args.suite in ("micro", "all"):
        suites.append(("micro", run_micro_benchmarks))
    if args.suite in ("macro", "all"):
        suites.append(("macro", run_macro_benchmarks))
    if args.suite in ("lint", "all"):
        suites.append(("lint", run_lint_benchmarks))
    rows = []
    for _, runner in suites:
        rows.extend(runner(quick=args.quick))
    print(f"{'benchmark':<28} {'iters':>6} {'total s':>9} {'per-iter':>12}")
    for row in rows:
        print(f"{row.name:<28} {row.iterations:>6} {row.seconds:>9.4f} "
              f"{row.per_iteration_us:>10.1f}us")
    payload = {
        "label": args.label,
        "quick": bool(args.quick),
        "rows": [dataclasses.asdict(row) for row in rows],
    }
    if args.compare:
        with open(args.compare, encoding="utf-8") as stream:
            baseline_doc = json.load(stream)
        baseline_rows = baseline_doc["data"]["rows"]
        comparisons = compare_rows(baseline_rows,
                                   payload["rows"])
        payload["baseline_label"] = baseline_doc["data"].get("label")
        payload["speedups"] = comparisons
        print(f"\n{'benchmark':<28} {'baseline':>12} {'after':>12} "
              f"{'speedup':>8}")
        for record in comparisons:
            speedup = record["speedup"]
            print(f"{record['name']:<28} "
                  f"{record['baseline_us']:>10.1f}us "
                  f"{record['after_us']:>10.1f}us "
                  f"{speedup:>7.2f}x" if speedup else
                  f"{record['name']:<28} (no after timing)")
    if args.out:
        from pathlib import Path
        path = emit_bench(args.label, payload, directory=Path(args.out))
        print(f"\nwrote {path}")
    if args.compare and args.check:
        flagged = regressions(comparisons, args.tolerance)
        if flagged:
            print(f"\nREGRESSION: {len(flagged)} benchmark(s) beyond "
                  f"{args.tolerance:g}% of baseline:")
            for record in flagged:
                print(f"  {record['name']:<28} "
                      f"{record['baseline_us']:>10.1f}us -> "
                      f"{record['after_us']:>10.1f}us "
                      f"({record['regression_pct']:+g}%)")
            return 1
        print(f"\nperf check ok: no benchmark regressed beyond "
              f"{args.tolerance:g}% of baseline")
    return 0


def _cmd_kv_md_compare(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.kv.bench import run_kv_md_comparison
    from repro.obs.bench import emit_bench

    overrides = ({"sessions": 2, "keys": 8, "ops": 24, "value_size": 32}
                 if args.smoke else
                 {"sessions": args.sessions, "keys": args.keys,
                  "ops": args.ops, "value_size": args.value_size})
    payload = run_kv_md_comparison(
        write_ratio=args.write_ratio, distribution=args.distribution,
        zipf_exponent=args.zipf_exponent, seed=args.seed,
        shift_every=args.shift_every, **overrides)
    print(f"{'n':>3} {'t':>2} {'protocol':<10} {'plan':<18} "
          f"{'ops/tick':>9} {'lin':>4} {'rd md B':>9} {'rd data B':>9} "
          f"{'fetches':>7} {'miss':>5} {'vfail':>5}")
    for row in payload["rows"]:
        print(f"{row['n']:>3} {row['t']:>2} {row['protocol']:<10} "
              f"{row['plan'] or '-':<18} {row['ops_per_tick']:>9.4f} "
              f"{'ok' if row['linearizable'] else 'FAIL':>4} "
              f"{row['read_metadata_bytes']:>9} "
              f"{row['read_data_bytes']:>9} {row['block_fetches']:>7} "
              f"{row['block_misses']:>5} {row['verify_failures']:>5}")
    for entry in payload["summary"]:
        print(f"\nn={entry['n']} t={entry['t']}: atomic_md reads move "
              f"{entry['read_data_bytes_ratio']:.2f}x fewer data-plane "
              f"bytes than atomic_ns")
    if args.out:
        path = emit_bench(args.label, payload,
                          directory=Path(args.out))
        print(f"wrote {path}")
    return 0


def _cmd_kv_readheavy(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.kv.bench import run_kv_readheavy_comparison
    from repro.obs.bench import emit_bench

    if args.check:
        return _check_kv_readheavy(Path(args.check))
    # The read-heavy comparison is a pinned benchmark (the committed
    # BENCH_kv_readheavy.json): its workload shape comes from the tuned
    # function defaults, not the generic sweep flags — only the fleet,
    # seed, and cache knobs pass through (and --smoke shrinks the run).
    overrides = ({"sessions": 2, "keys": 4, "ops": 48, "value_size": 32}
                 if args.smoke else {})
    payload = run_kv_readheavy_comparison(
        n=args.n, t=args.t, seed=args.seed,
        cache_size=args.cache or 32,
        lease_ticks=args.lease_ticks or 128, **overrides)
    print(f"{'case':<18} {'rd/tick':>8} {'ticks':>6} {'lin':>4} "
          f"{'lease':>6} {'reval':>6} {'hits':>5} {'fb':>4}")
    for row in payload["rows"]:
        print(f"{row['case']:<18} {row['reads_per_tick']:>8.4f} "
              f"{row['ticks']:>6} "
              f"{'ok' if row['linearizable'] else 'FAIL':>4} "
              f"{row['lease_hits']:>6} {row['revalidations']:>6} "
              f"{row['revalidate_hits']:>5} "
              f"{row['revalidate_fallbacks']:>4}")
    summary = payload["summary"]
    print(f"\nsession cache: {summary['read_throughput_ratio']:.2f}x "
          f"read throughput vs uncached atomic_md "
          f"({'all linearizable' if summary['all_linearizable'] else 'LINEARIZABILITY FAILURES'})")
    if args.out:
        label = args.label if args.label != "kv" else "kv_readheavy"
        path = emit_bench(label, payload, directory=Path(args.out))
        print(f"wrote {path}")
    return 0


def _check_kv_readheavy(path) -> int:
    """Validate a committed read-heavy bench payload against the
    acceptance gates (the CI pin for ``BENCH_kv_readheavy.json``)."""
    import json

    document = json.loads(path.read_text(encoding="utf-8"))
    payload = document.get("data", document)
    rows = {row["case"]: row for row in payload["rows"]}
    summary = payload["summary"]
    failures = []
    required = ("uncached", "cached", "cached+chaos",
                "cached+byz-stale", "cached+byz-forged")
    for case in required:
        if case not in rows:
            failures.append(f"missing case {case!r}")
    for case, row in rows.items():
        if not row["linearizable"]:
            failures.append(f"case {case!r} is not linearizable")
    ratio = summary.get("read_throughput_ratio", 0.0)
    if ratio <= 5.0:
        failures.append(f"read throughput ratio {ratio} <= 5.0")
    forged = rows.get("cached+byz-forged")
    if forged is not None and not forged["revalidate_fallbacks"]:
        failures.append(
            "forged-metadata case triggered no full-read fallback")
    if failures:
        print(f"readheavy check FAILED for {path}:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"readheavy check ok: {ratio:.2f}x read throughput, "
          f"{len(rows)} cases linearizable ({path})")
    return 0


def _cmd_kv_churn(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs.bench import emit_bench
    from repro.repair.bench import run_kv_churn_comparison

    if args.check:
        return _check_kv_churn(Path(args.check))
    # The churn comparison is a pinned benchmark (the committed
    # BENCH_kv_churn.json): the n=7/t=2 deployment and storm timing
    # come from the tuned function defaults — only the seed passes
    # through (and --smoke shrinks the workload, not the fleet).
    overrides = ({"sessions": 2, "keys": 4, "ops": 48,
                  "first_crash": 20, "stagger": 80, "replace_after": 30}
                 if args.smoke else {})
    payload = run_kv_churn_comparison(seed=args.seed, **overrides)
    print(f"{'case':<16} {'ops/tick':>9} {'done':>5} {'ticks':>6} "
          f"{'lin':>4} {'alive':>5} {'repl':>5} {'reprs':>6} "
          f"{'lag':>4} {'live':>5}")
    for row in payload["rows"]:
        print(f"{row['case']:<16} {row['ops_per_tick']:>9.4f} "
              f"{row['completed']:>5} {row['ticks']:>6} "
              f"{'ok' if row['linearizable'] else 'FAIL':>4} "
              f"{row['alive_servers']:>5} "
              f"{row.get('replacements', '-'):>5} "
              f"{row.get('repairs_completed', '-'):>6} "
              f"{row.get('repair_lag_final', '-'):>4} "
              f"{'LOST' if row['liveness_violation'] else 'ok':>5}")
    summary = payload["summary"]
    print(f"\nchurn: {summary['throughput_retention']:.1%} of "
          f"fault-free throughput retained under "
          f"{summary['replacements']} crash-replace cycles "
          f"({summary['repairs_completed']} registers re-dispersed, "
          f"final repair lag {summary['repair_lag_final']}); "
          f"unrepaired fleet "
          f"{'lost liveness' if summary['norepair_liveness_violation'] else 'fell below quorum' if summary['norepair_below_quorum'] else 'SURVIVED (unexpected)'}")
    if args.out:
        label = args.label if args.label != "kv" else "kv_churn"
        path = emit_bench(label, payload, directory=Path(args.out))
        print(f"wrote {path}")
    return 0


def _check_kv_churn(path) -> int:
    """Validate a committed churn bench payload against the acceptance
    gates (the CI pin for ``BENCH_kv_churn.json``)."""
    import json

    document = json.loads(path.read_text(encoding="utf-8"))
    payload = document.get("data", document)
    rows = {row["case"]: row for row in payload["rows"]}
    summary = payload["summary"]
    failures = []
    for case in ("faultfree", "churn+repair", "churn-norepair"):
        if case not in rows:
            failures.append(f"missing case {case!r}")
    repaired = rows.get("churn+repair")
    if repaired is not None:
        if not repaired["linearizable"]:
            failures.append("repaired case is not linearizable")
        if repaired["liveness_violation"]:
            failures.append("repaired case lost liveness")
        if repaired["completed"] != repaired["ops"]:
            failures.append(
                f"repaired case completed {repaired['completed']} of "
                f"{repaired['ops']} operations")
        if repaired["repair_lag_final"] != 0:
            failures.append(
                f"repair lag never reached zero "
                f"({repaired['repair_lag_final']} outstanding)")
        if not repaired.get("replacements"):
            failures.append("repaired case replaced no members")
    retention = summary.get("throughput_retention", 0.0)
    if retention < 0.9:
        failures.append(f"throughput retention {retention} < 0.9")
    if not (summary.get("norepair_liveness_violation")
            or summary.get("norepair_below_quorum")):
        failures.append(
            "unrepaired storm neither lost liveness nor fell below "
            "quorum — the comparison proves nothing")
    if failures:
        print(f"churn check FAILED for {path}:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"churn check ok: {retention:.1%} throughput retained over "
          f"{summary['replacements']} replacements, unrepaired fleet "
          f"degraded as expected ({path})")
    return 0


def _cmd_repair(args: argparse.Namespace) -> int:
    """Operator view of one churn scenario: run the storm with repair
    attached and render the monitor dashboard's repair plane."""
    from repro.obs.export import health_dashboard
    from repro.obs.health import HealthMonitor
    from repro.repair.bench import churn_storm_plan, run_kv_churn_case

    sessions, keys, ops = ((2, 4, 32) if args.smoke
                           else (args.sessions, args.keys, args.ops))
    plan = churn_storm_plan(args.n, args.t, seed=args.seed,
                            first_crash=args.first_crash,
                            stagger=args.stagger,
                            replace_after=args.replace_after)
    monitor = HealthMonitor(bucket_ticks=args.bucket_ticks)
    row = run_kv_churn_case(
        num_shards=args.shards, n=args.n, t=args.t, sessions=sessions,
        keys=keys, ops=ops, write_ratio=0.5, seed=args.seed,
        value_size=64, plan=plan, repair=True, case="churn+repair",
        batch_size=args.batch, monitor=monitor)
    print(f"deployment n={args.n} t={args.t} shards={args.shards}: "
          f"{row['replacements']} members replaced, "
          f"{row['repairs_completed']} registers re-dispersed "
          f"({row['repairs_failed']} failed, "
          f"{row['repair_retries']} retries), "
          f"final repair lag {row['repair_lag_final']}")
    print(f"workload: {row['completed']}/{ops} ops completed in "
          f"{row['ticks']} ticks "
          f"({'linearizable' if row['linearizable'] else 'LINEARIZABILITY FAILURE'}), "
          f"sessions at epoch {row['session_epochs']}")
    print()
    print(health_dashboard(monitor))
    return 0


def _cmd_kv_bench(args: argparse.Namespace) -> int:
    from repro.kv.bench import run_kv_bench
    from repro.obs.bench import emit_bench

    if args.md_compare:
        return _cmd_kv_md_compare(args)
    if args.churn:
        return _cmd_kv_churn(args)
    if args.readheavy or args.check:
        return _cmd_kv_readheavy(args)
    if args.smoke:
        shard_counts = [1, 2]
        overrides = {"sessions": 2, "keys": 8, "ops": 24,
                     "value_size": 32}
    else:
        shard_counts = [int(token) for token
                        in args.shards.split(",") if token.strip()]
        overrides = {"sessions": args.sessions, "keys": args.keys,
                     "ops": args.ops, "value_size": args.value_size}
    chaos_plan = None if args.no_chaos else args.plan
    payload = run_kv_bench(
        shard_counts, n=args.n, t=args.t, protocol=args.protocol,
        write_ratio=args.write_ratio, distribution=args.distribution,
        zipf_exponent=args.zipf_exponent, seed=args.seed,
        chaos_plan=chaos_plan, shard_k=args.shard_k,
        shift_every=args.shift_every, cache_size=args.cache,
        lease_ticks=args.lease_ticks, **overrides)
    cached = args.cache > 0
    cache_cols = (f" {'rd/tick':>8} {'lease':>6} {'reval':>6} {'fb':>4}"
                  if cached else "")
    print(f"{'shards':>6} {'plan':<10} {'ops/tick':>9} {'ticks':>7} "
          f"{'batch':>6} {'retries':>7} {'bp':>4} {'lin':>4} "
          f"{'md B':>9} {'data B':>9} {'rd data B':>9}" + cache_cols)
    for row in payload["rows"]:
        extra = (f" {row['reads_per_tick']:>8.4f} {row['lease_hits']:>6} "
                 f"{row['revalidations']:>6} "
                 f"{row['revalidate_fallbacks']:>4}" if cached else "")
        print(f"{row['shards']:>6} {row['plan'] or '-':<10} "
              f"{row['ops_per_tick']:>9.4f} {row['ticks']:>7} "
              f"{row['batch_factor']:>6.2f} {row['retries']:>7} "
              f"{row['backpressure_hits']:>4} "
              f"{'ok' if row['linearizable'] else 'FAIL':>4} "
              f"{row['metadata_bytes']:>9} {row['data_bytes']:>9} "
              f"{row['read_data_bytes']:>9}" + extra)
    fault_free = [row for row in payload["rows"] if row["plan"] is None]
    if len(fault_free) >= 2:
        first, last = fault_free[0], fault_free[-1]
        if first["ops_per_tick"] > 0:
            gain = last["ops_per_tick"] / first["ops_per_tick"]
            print(f"\nscaling {first['shards']} -> {last['shards']} "
                  f"shards: {gain:.2f}x ops/tick")
    if args.out:
        from pathlib import Path
        path = emit_bench(args.label, payload,
                          directory=Path(args.out))
        print(f"wrote {path}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.analysis.complexity import ComplexityModel
    model = ComplexityModel(n=args.n, t=args.t, k=args.k,
                            value_size=args.value_size)
    print(f"deployment n={args.n} t={args.t} k={model.k} "
          f"|F|={args.value_size} B")
    print(f"quorum (n-t): {args.n - args.t}, "
          f"deliver quorum (2t+1): {2 * args.t + 1}")
    for name, prediction in model.all_protocols().items():
        print(f"  {name:<11} {prediction.resilience:<7} "
              f"blow-up {prediction.storage_blowup:6.2f}x  "
              f"write ~{prediction.write_messages} msgs / "
              f"{prediction.write_bytes} B  "
              f"read ~{prediction.read_messages} msgs / "
              f"{prediction.read_bytes} B")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.runner import run_from_args
    return run_from_args(args)


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.chaos import (
        BUILTIN_PLANS,
        DEFAULT_BATTERY,
        STATUS_OK,
        campaign_report,
        replay_reproducer,
        save_reproducer,
        shrink_plan,
        sweep,
    )

    if args.replay:
        result, faithful = replay_reproducer(args.replay)
        print(f"replayed {args.replay}: status={result.status} "
              f"digest={result.digest[:16]}")
        print("deterministic replay: "
              + ("reproduced bit-for-bit" if faithful
                 else "MISMATCH against the recorded failure"))
        return 0 if faithful else 1

    if args.smoke:
        protocols = ["atomic_ns"]
        plan_names = ["none", "drops", "crash"]
        seeds = [0]
    else:
        protocols = args.protocols or ["atomic", "atomic_ns", "martin"]
        plan_names = list(args.plans or DEFAULT_BATTERY)
        seeds = list(range(args.seeds))
    unknown = sorted(set(plan_names) - set(BUILTIN_PLANS))
    if unknown:
        print(f"unknown plans: {unknown}; choose from "
              f"{list(BUILTIN_PLANS)}", file=sys.stderr)
        return 2
    if args.boundary and "boundary" not in plan_names:
        plan_names.append("boundary")

    results = sweep(protocols, plan_names, seeds, n=args.n, t=args.t)
    print(f"{'protocol':<10} {'plan':<14} {'seed':>4} {'status':<10} "
          f"{'faults':>6}  detail")
    for result in results:
        marker = "" if result.expected else "  <-- UNEXPECTED"
        print(f"{result.spec.protocol:<10} {result.spec.plan.name:<14} "
              f"{result.spec.seed:>4} {result.status:<10} "
              f"{sum(result.faults.values()):>6}  "
              f"{result.detail[:60]}{marker}")
    report = campaign_report(results)
    print(f"\n{report['runs']} runs: {report['by_status']}; "
          f"{report['unexpected']} unexpected outcome(s)")
    profiles = {name: profile for name, profile
                in report["fault_profile"].items() if profile}
    if profiles:
        print("\nfault coverage (injector counters summed per plan):")
        for plan_name, profile in profiles.items():
            detail = " ".join(f"{counter}={profile[counter]}"
                              for counter in sorted(profile))
            print(f"  {plan_name:<14} {detail}")

    failing = [result for result in results
               if result.status != STATUS_OK]
    if failing and args.reproducer_dir:
        os.makedirs(args.reproducer_dir, exist_ok=True)
        for result in failing:
            spec = result.spec
            if args.no_shrink:
                final = result
            else:
                shrunk = shrink_plan(spec, result.status)
                final = shrunk.result
                print(f"shrunk {spec.protocol}/{spec.plan.name}/"
                      f"s{spec.seed}: removed "
                      f"{shrunk.removed} component(s) in "
                      f"{shrunk.attempts} runs")
            name = (f"chaos_{spec.protocol}_{spec.plan.name}_"
                    f"s{spec.seed}.json")
            path = os.path.join(args.reproducer_dir, name)
            save_reproducer(final, path)
            print(f"wrote reproducer {path}")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as stream:
            json.dump(report, stream, indent=2, sort_keys=True)
            stream.write("\n")
        print(f"wrote campaign report to {args.out}")
    return 0 if not report["unexpected"] else 1


def _monitor_export(args: argparse.Namespace, monitor) -> None:
    """Write the optional ``--html`` / ``--prom`` reports for one
    monitored run."""
    from repro.obs import export_health_html, export_prometheus

    if args.html:
        with open(args.html, "w", encoding="utf-8") as stream:
            export_health_html(monitor, stream)
        print(f"wrote HTML health report to {args.html}")
    if args.prom:
        with open(args.prom, "w", encoding="utf-8") as stream:
            count = export_prometheus(monitor, stream)
        print(f"wrote {count} Prometheus samples to {args.prom}")


def _cmd_monitor(args: argparse.Namespace) -> int:
    from repro.chaos import BUILTIN_PLANS, RunSpec, builtin_plan, execute_run
    from repro.obs import HealthMonitor, health_dashboard
    from repro.obs.bench import emit_bench

    if args.smoke:
        args.seeds = 1
        args.writes = min(args.writes, 3)
        args.reads = min(args.reads, 3)

    def make_monitor() -> HealthMonitor:
        return HealthMonitor(bucket_ticks=args.bucket_ticks)

    def run_spec(plan_name: str, seed: int):
        plan = builtin_plan(plan_name, args.n, args.t, seed=seed)
        spec = RunSpec(protocol=args.protocol, plan=plan, n=args.n,
                       t=args.t, seed=seed, clients=args.clients,
                       writes=args.writes, reads=args.reads)
        monitor = make_monitor()
        result = execute_run(spec, monitor=monitor)
        return spec, result, monitor

    if args.source == "kv-bench":
        from repro.kv.bench import run_kv_case

        monitor = make_monitor()
        plan_name = None if args.plan == "none" else args.plan
        overrides = {"sessions": 2, "keys": 8, "ops": 24,
                     "value_size": 32} if args.smoke else {}
        row, _ = run_kv_case(args.shards, n=args.n, t=args.t,
                             protocol=args.protocol, seed=args.seed,
                             plan_name=plan_name, monitor=monitor,
                             cache_size=args.cache,
                             lease_ticks=args.lease_ticks, **overrides)
        print(f"source=kv-bench protocol={args.protocol} "
              f"shards={args.shards} plan={args.plan} n={args.n} "
              f"t={args.t} seed={args.seed}")
        print(f"ops={row.ops} ops/tick={row.ops_per_tick:.4f} "
              f"linearizable={'ok' if row.linearizable else 'FAIL'}")
        print()
        print(health_dashboard(monitor))
        _monitor_export(args, monitor)
        if args.out:
            from pathlib import Path
            payload = {"source": "kv-bench", "row": row.to_json(),
                       "telemetry": monitor.snapshot()}
            path = emit_bench(args.label, payload,
                              directory=Path(args.out))
            print(f"wrote {path}")
        return 0

    if args.source == "simulate":
        if args.plan not in BUILTIN_PLANS:
            print(f"unknown plan {args.plan!r}; choose from "
                  f"{list(BUILTIN_PLANS)}", file=sys.stderr)
            return 2
        spec, result, monitor = run_spec(args.plan, args.seed)
        print(f"source=simulate protocol={args.protocol} "
              f"plan={args.plan} n={args.n} t={args.t} "
              f"seed={args.seed} status={result.status}")
        print()
        print(health_dashboard(monitor))
        _monitor_export(args, monitor)
        if args.out:
            from pathlib import Path
            payload = {"source": "simulate", "status": result.status,
                       "telemetry": monitor.snapshot()}
            path = emit_bench(args.label, payload,
                              directory=Path(args.out))
            print(f"wrote {path}")
        return 0

    # -- source == "chaos": sweep plans x seeds, score separation ------------
    plan_names = list(args.plans)
    unknown = sorted(set(plan_names) - set(BUILTIN_PLANS))
    if unknown:
        print(f"unknown plans: {unknown}; choose from "
              f"{list(BUILTIN_PLANS)}", file=sys.stderr)
        return 2
    runs = []
    last_monitor = None
    print(f"source=chaos protocol={args.protocol} n={args.n} "
          f"t={args.t} seeds={args.seeds}")
    print(f"{'plan':<14} {'seed':>4} {'status':<10} {'faulty':<10} "
          f"{'separation':<11} {'alerts':<7} scores")
    for plan_name in plan_names:
        for seed in range(args.seeds):
            spec, result, monitor = run_spec(plan_name, seed)
            last_monitor = monitor
            scores = monitor.suspicion_scores()
            faulty = [f"P{index}" for index in spec.plan.faulty]
            honest = [server for server in scores
                      if server not in faulty]
            if faulty and honest:
                separated = (min(scores[server] for server in faulty)
                             > max(scores[server] for server in honest))
                verdict = "ok" if separated else "MIXED"
            else:
                separated = None
                verdict = "-"
            alerts = [entry["name"] for entry in monitor.alerts()]
            runs.append({
                "plan": plan_name,
                "seed": seed,
                "status": result.status,
                "faulty": faulty,
                "scores": scores,
                "separated": separated,
                "alerts": alerts,
            })
            score_text = " ".join(f"{server}={value:.3f}"
                                  for server, value in scores.items())
            print(f"{plan_name:<14} {seed:>4} {result.status:<10} "
                  f"{','.join(faulty) or '-':<10} {verdict:<11} "
                  f"{len(alerts):<7} {score_text}")
    mixed = [run for run in runs if run["separated"] is False]
    alerting = sorted({run["plan"] for run in runs if run["alerts"]})
    print(f"\n{len(runs)} runs: "
          f"{len(mixed)} without faulty/honest separation; "
          f"burn alerts under {alerting or 'no plan'}")
    if last_monitor is not None:
        _monitor_export(args, last_monitor)
    if args.out:
        from pathlib import Path
        payload = {"source": "chaos", "protocol": args.protocol,
                   "n": args.n, "t": args.t, "seeds": args.seeds,
                   "bucket_ticks": args.bucket_ticks, "runs": runs}
        path = emit_bench(args.label, payload, directory=Path(args.out))
        print(f"wrote {path}")
    return 0


def _add_workload_arguments(parser: argparse.ArgumentParser,
                            default_protocol: str) -> None:
    """Cluster/workload options shared by ``simulate`` and ``trace``."""
    parser.add_argument("--protocol", default=default_protocol,
                        choices=sorted(PROTOCOLS))
    parser.add_argument("--n", type=int, default=4)
    parser.add_argument("--t", type=int, default=1)
    parser.add_argument("--k", type=int, default=None)
    parser.add_argument("--commitment", default="vector",
                        choices=["vector", "merkle"])
    parser.add_argument("--clients", type=int, default=2)
    parser.add_argument("--writes", type=int, default=3)
    parser.add_argument("--reads", type=int, default=3)
    parser.add_argument("--value-size", type=int, default=256)
    parser.add_argument("--seed", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    commands = parser.add_subparsers(dest="command", required=True)

    simulate = commands.add_parser(
        "simulate", help="run a random workload on a simulated cluster")
    _add_workload_arguments(simulate, default_protocol="atomic_ns")
    simulate.add_argument("--trace", action="store_true",
                          help="print the per-operation timeline")
    simulate.add_argument("--trace-out", metavar="FILE", default=None,
                          help="write the event log as JSON lines")
    simulate.set_defaults(handler=_cmd_simulate)

    trace = commands.add_parser(
        "trace", help="run a workload and export its causal trace "
                      "(spans, critical paths, instruments)")
    _add_workload_arguments(trace, default_protocol="atomic")
    trace.add_argument("--format", default="perfetto",
                       choices=["perfetto", "jsonl", "text"],
                       help="perfetto: Chrome trace-event JSON; jsonl: "
                            "raw causal records; text: human report")
    trace.add_argument("--out", metavar="FILE", default=None,
                       help="output file (default: stdout)")
    trace.set_defaults(handler=_cmd_trace)

    experiments = commands.add_parser(
        "experiments", help="run evaluation experiments (T1-T2, F1-F13)")
    experiments.add_argument("names", nargs="*",
                             help="experiment ids (default: all)")
    experiments.add_argument("--fast", action="store_true")
    experiments.add_argument("--bench-dir", metavar="DIR", default=None,
                             help="emit machine-readable BENCH_*.json "
                                  "files into DIR")
    experiments.set_defaults(handler=_cmd_experiments)

    bench = commands.add_parser(
        "bench", help="run micro/macro performance benchmarks and emit "
                      "machine-readable BENCH_*.json rows")
    bench.add_argument("--suite", default="all",
                       choices=["micro", "macro", "lint", "all"],
                       help="micro: data-plane kernels; macro: "
                            "end-to-end Atomic workloads; lint: "
                            "static-analysis wall time (cold + cached)")
    bench.add_argument("--quick", action="store_true",
                       help="smoke mode: few iterations, smallest "
                            "cluster only")
    bench.add_argument("--label", default="perf",
                       help="bench name: output file is "
                            "BENCH_<label>.json")
    bench.add_argument("--out", metavar="DIR", default=None,
                       help="directory for the BENCH_<label>.json file "
                            "(default: print only)")
    bench.add_argument("--compare", metavar="FILE", default=None,
                       help="baseline BENCH_*.json to compute speedups "
                            "against (embedded in the output)")
    bench.add_argument("--check", action="store_true",
                       help="with --compare: exit non-zero if any "
                            "benchmark regressed beyond --tolerance "
                            "(the CI perf gate)")
    bench.add_argument("--tolerance", type=float, default=25.0,
                       metavar="PCT",
                       help="allowed slowdown vs baseline before "
                            "--check fails (percent; default 25)")
    bench.set_defaults(handler=_cmd_bench)

    kv_bench = commands.add_parser(
        "kv-bench", help="sharded key-value load harness: sweep shard "
                         "counts under Zipf/uniform workloads, check "
                         "per-key linearizability, emit BENCH rows")
    kv_bench.add_argument("--shards", default="1,4,16", metavar="LIST",
                          help="comma-separated shard counts to sweep "
                               "(default: 1,4,16)")
    kv_bench.add_argument("--protocol", default="atomic",
                          choices=sorted(PROTOCOLS))
    kv_bench.add_argument("--n", type=int, default=4)
    kv_bench.add_argument("--t", type=int, default=1)
    kv_bench.add_argument("--sessions", type=int, default=4)
    kv_bench.add_argument("--keys", type=int, default=32)
    kv_bench.add_argument("--ops", type=int, default=96)
    kv_bench.add_argument("--write-ratio", type=float, default=0.5)
    kv_bench.add_argument("--distribution", default="zipf",
                          choices=list(DISTRIBUTIONS))
    kv_bench.add_argument("--zipf-exponent", type=float, default=1.1)
    kv_bench.add_argument("--shift-every", type=int,
                          default=DEFAULT_SHIFT_EVERY,
                          help="ops between hot-set rotations under "
                               "--distribution zipf-shift")
    kv_bench.add_argument("--shard-k", type=int, default=None,
                          help="per-shard erasure threshold k (default: "
                               "protocol default; atomic_md picks t+1)")
    kv_bench.add_argument("--value-size", type=int, default=64)
    kv_bench.add_argument("--seed", type=int, default=0)
    kv_bench.add_argument("--plan", default="delays",
                          help="builtin chaos plan for the extra fault "
                               "case at the largest shard count "
                               "(default: delays)")
    kv_bench.add_argument("--no-chaos", action="store_true",
                          help="skip the chaos case")
    kv_bench.add_argument("--smoke", action="store_true",
                          help="tier-1 smoke: n=4, shards 1,2, small "
                               "workload")
    kv_bench.add_argument("--md-compare", action="store_true",
                          help="head-to-head atomic_ns vs atomic_md at "
                               "n=4/t=1 and n=7/t=2 plus a Byzantine "
                               "corrupt-block case (the "
                               "BENCH_kv_md.json payload); --shards/"
                               "--protocol/--plan are ignored")
    kv_bench.add_argument("--cache", type=int, default=0,
                          metavar="ENTRIES",
                          help="per-session read-cache capacity; 0 "
                               "(default) disables session caching")
    kv_bench.add_argument("--lease-ticks", type=int, default=0,
                          metavar="TICKS",
                          help="read-lease window in simulator ticks "
                               "(0 keeps the cache revalidation-only)")
    kv_bench.add_argument("--readheavy", action="store_true",
                          help="cached vs uncached atomic_md on one "
                               "read-heavy Zipf workload plus chaos "
                               "and Byzantine-metadata cases (the "
                               "BENCH_kv_readheavy.json payload); "
                               "--shards/--protocol/--plan are ignored")
    kv_bench.add_argument("--churn", action="store_true",
                          help="crash -> repair -> re-crash storm at "
                               "n=7/t=2: fault-free vs repaired vs "
                               "unrepaired fleet (the "
                               "BENCH_kv_churn.json payload); "
                               "--shards/--protocol/--plan/--n/--t are "
                               "ignored")
    kv_bench.add_argument("--check", metavar="FILE", default=None,
                          help="validate a committed bench payload "
                               "against its acceptance gates and exit "
                               "non-zero on failure: with --churn a "
                               "BENCH_kv_churn.json (>=90%% throughput "
                               "retention, repair lag pinned to zero, "
                               "unrepaired fleet degraded), otherwise "
                               "a BENCH_kv_readheavy.json (>5x read "
                               "throughput, every case linearizable, "
                               "forged-meta fallbacks)")
    kv_bench.add_argument("--label", default="kv",
                          help="bench name: output file is "
                               "BENCH_<label>.json")
    kv_bench.add_argument("--out", metavar="DIR", default=None,
                          help="directory for the BENCH_<label>.json "
                               "file (default: print only)")
    kv_bench.set_defaults(handler=_cmd_kv_bench)

    repair = commands.add_parser(
        "repair", help="repair & reconfiguration plane: run a churn "
                       "storm with background re-dispersal and member "
                       "replacement, render the repair dashboard")
    repair.add_argument("--n", type=int, default=7)
    repair.add_argument("--t", type=int, default=2)
    repair.add_argument("--shards", type=int, default=2)
    repair.add_argument("--sessions", type=int, default=4)
    repair.add_argument("--keys", type=int, default=8)
    repair.add_argument("--ops", type=int, default=96)
    repair.add_argument("--seed", type=int, default=0)
    repair.add_argument("--batch", type=int, default=2,
                        help="max concurrent background repair rounds "
                             "(rate limit against live load)")
    repair.add_argument("--first-crash", type=int, default=40,
                        help="decision point of the first crash")
    repair.add_argument("--stagger", type=int, default=120,
                        help="decisions between successive crashes")
    repair.add_argument("--replace-after", type=int, default=40,
                        help="decisions from each crash to its member "
                             "replacement")
    repair.add_argument("--bucket-ticks", type=int, default=32,
                        help="time-series bucket width in logical ticks")
    repair.add_argument("--smoke", action="store_true",
                        help="tier-1 smoke: small workload, same "
                             "n=7/t=2 storm shape")
    repair.set_defaults(handler=_cmd_repair)

    info = commands.add_parser(
        "info", help="print analytic predictions for a deployment")
    info.add_argument("--n", type=int, default=4)
    info.add_argument("--t", type=int, default=1)
    info.add_argument("--k", type=int, default=None)
    info.add_argument("--value-size", type=int, default=4096)
    info.set_defaults(handler=_cmd_info)

    chaos = commands.add_parser(
        "chaos", help="fault-injection campaigns: sweep seeds x plans x "
                      "protocols, check atomicity and wait-freedom, "
                      "shrink and serialize failures")
    chaos.add_argument("--protocols", nargs="*", default=None,
                       metavar="NAME",
                       help="protocols to sweep (default: atomic "
                            "atomic_ns martin)")
    chaos.add_argument("--plans", nargs="*", default=None, metavar="PLAN",
                       help="builtin fault plans to sweep (default: all "
                            "within-budget plans)")
    chaos.add_argument("--seeds", type=int, default=1, metavar="N",
                       help="sweep workload/plan seeds 0..N-1")
    chaos.add_argument("--n", type=int, default=4)
    chaos.add_argument("--t", type=int, default=1)
    chaos.add_argument("--smoke", action="store_true",
                       help="tier-1 smoke: one protocol, three plans, "
                            "one seed")
    chaos.add_argument("--boundary", action="store_true",
                       help="include the n=3t boundary probe (crashes "
                            "t+1 servers; a failure is expected there)")
    chaos.add_argument("--out", metavar="FILE", default=None,
                       help="write the JSON campaign report to FILE")
    chaos.add_argument("--reproducer-dir", metavar="DIR", default=None,
                       help="serialize failing (seed, plan) reproducers "
                            "into DIR")
    chaos.add_argument("--no-shrink", action="store_true",
                       help="serialize failing plans as-is instead of "
                            "bisect-shrinking them first")
    chaos.add_argument("--replay", metavar="FILE", default=None,
                       help="re-execute a serialized reproducer and "
                            "verify the bit-for-bit replay")
    chaos.set_defaults(handler=_cmd_chaos)

    monitor = commands.add_parser(
        "monitor", help="health & SLO telemetry: suspicion scores, "
                        "burn-rate alerts, and windowed series for a "
                        "simulate / kv-bench / chaos run")
    monitor.add_argument("--source", default="simulate",
                         choices=["simulate", "kv-bench", "chaos"],
                         help="what to attach the health monitor to: "
                              "one register workload (simulate), the "
                              "sharded kv harness (kv-bench), or a "
                              "plans x seeds chaos sweep scoring "
                              "faulty/honest separation (chaos)")
    monitor.add_argument("--protocol", default="atomic_ns",
                         choices=sorted(PROTOCOLS))
    monitor.add_argument("--n", type=int, default=4)
    monitor.add_argument("--t", type=int, default=1)
    monitor.add_argument("--seed", type=int, default=0,
                         help="workload seed (simulate / kv-bench)")
    monitor.add_argument("--clients", type=int, default=2)
    monitor.add_argument("--writes", type=int, default=6)
    monitor.add_argument("--reads", type=int, default=6)
    monitor.add_argument("--plan", default="none",
                         help="builtin chaos plan for simulate / "
                              "kv-bench (default: fault-free)")
    monitor.add_argument("--plans", nargs="*", metavar="PLAN",
                         default=["none", "slow-server", "boundary"],
                         help="plans the chaos source sweeps (default: "
                              "none slow-server boundary)")
    monitor.add_argument("--seeds", type=int, default=1, metavar="N",
                         help="chaos source: sweep seeds 0..N-1")
    monitor.add_argument("--shards", type=int, default=4,
                         help="kv-bench source: shard count")
    monitor.add_argument("--cache", type=int, default=0,
                         metavar="ENTRIES",
                         help="kv-bench source: per-session read-cache "
                              "capacity (0 disables)")
    monitor.add_argument("--lease-ticks", type=int, default=0,
                         metavar="TICKS",
                         help="kv-bench source: read-lease window in "
                              "simulator ticks")
    monitor.add_argument("--bucket-ticks", type=int, default=32,
                         help="time-series bucket width in logical "
                              "ticks (default: 32)")
    monitor.add_argument("--html", metavar="FILE", default=None,
                         help="write a self-contained HTML health "
                              "report")
    monitor.add_argument("--prom", metavar="FILE", default=None,
                         help="write Prometheus text exposition")
    monitor.add_argument("--out", metavar="DIR", default=None,
                         help="emit BENCH_<label>.json telemetry "
                              "into DIR")
    monitor.add_argument("--label", default="health",
                         help="bench name: output file is "
                              "BENCH_<label>.json")
    monitor.add_argument("--smoke", action="store_true",
                         help="tier-1 smoke: one seed, small workload")
    monitor.set_defaults(handler=_cmd_monitor)

    from repro.lint.runner import add_lint_arguments
    lint = commands.add_parser(
        "lint", help="protocol-aware static analysis (determinism, "
                     "quorum arithmetic, wire/handler completeness)")
    add_lint_arguments(lint)
    lint.set_defaults(handler=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
