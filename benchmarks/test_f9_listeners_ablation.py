"""F9 (ablation) — the listeners mechanism: wait-free reads vs retries."""

from repro.experiments import listeners_ablation


def test_f9_listeners_ablation(once):
    rows = once(lambda: listeners_ablation.run(
        write_counts=(0, 2, 4, 8), reads=4))
    print()
    print(listeners_ablation.render(rows))
    by_key = {(row.variant, row.concurrent_writes): row for row in rows}
    # With listeners a read issues exactly one query round, always.
    for writes in (0, 2, 4, 8):
        assert by_key[("atomic", writes)].rounds_per_read == 1.0
    # Without listeners, contention induces retries.
    assert by_key[("no_listeners", 8)].rounds_per_read > 1.0
    # Safety is identical in both variants.
    assert all(row.atomic for row in rows)
