"""F6 — read cost after inconsistent writes: rollback vs verification."""

from repro.experiments import poisonous_writes


def test_f6_poisonous_writes(once):
    rows = once(lambda: poisonous_writes.run(counts=(0, 1, 2, 4, 8)))
    print()
    print(poisonous_writes.render(rows))
    goodson = {row.poisonous_writes: row for row in rows
               if row.protocol == "goodson"}
    atomic_ns = {row.poisonous_writes: row for row in rows
                 if row.protocol == "atomic_ns"}

    # Goodson et al.: one rollback round per poisonous version, read cost
    # grows linearly, and the poison is actually stored.
    for count in (1, 2, 4, 8):
        assert goodson[count].rollback_rounds == count
        assert goodson[count].poison_took_effect
    per_round = (goodson[8].read_messages - goodson[0].read_messages) / 8
    assert per_round >= 5  # at least a message per server per rollback

    # AtomicNS: write-time verification rejects the poison, so read cost
    # stays flat and nothing inconsistent is ever stored.
    for count in (0, 1, 2, 4, 8):
        assert atomic_ns[count].rollback_rounds == 0
        assert not atomic_ns[count].poison_took_effect
        assert abs(atomic_ns[count].read_messages
                   - atomic_ns[0].read_messages) <= 2
