"""F13 — why the paper avoids consensus: AtomicNS vs an atomic-broadcast
register."""

from repro.experiments import consensus_comparison


def test_f13_consensus_comparison(once):
    rows = once(lambda: consensus_comparison.run(ts=(1, 2)))
    print()
    print(consensus_comparison.render(rows))
    by_key = {(row.protocol, row.n): row for row in rows}
    for n in (4, 7):
        register = by_key[("atomic_ns", n)]
        consensus = by_key[("abc", n)]
        # Consensus costs several times more messages per write...
        assert consensus.write_messages > 3 * register.write_messages
        # ...an order of magnitude more per read (reads are ordered too)...
        assert consensus.read_messages > 10 * register.read_messages
        # ...and more round-trips (coin rounds on the critical path).
        assert consensus.write_rounds > register.write_rounds
        assert consensus.read_rounds > register.read_rounds
