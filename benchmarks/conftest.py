"""Benchmark-suite configuration.

Each ``test_t*/test_f*`` module regenerates one table or figure of the
paper (see DESIGN.md §3).  Experiment tables are produced once per run
(``benchmark.pedantic(rounds=1)``) and printed, so
``pytest benchmarks/ --benchmark-only -s`` reproduces the full evaluation;
pure timing benchmarks (erasure throughput, crypto operations, end-to-end
operation latency) use regular multi-round measurement.
"""

import pytest


def run_once(benchmark, func):
    """Benchmark an experiment once and return its result."""
    return benchmark.pedantic(func, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    """Fixture form of :func:`run_once`."""
    def runner(func):
        return run_once(benchmark, func)
    return runner
