"""Agreement-stack microbenchmarks (real timing): what one consensus
instance costs the simulator — context for F13's message counts."""

import pytest

from repro.agreement.acs import CommonSubset
from repro.agreement.binary import BinaryAgreement
from repro.common.ids import server_id
from repro.config import SystemConfig
from repro.net.process import Process
from repro.net.schedulers import RandomScheduler
from repro.net.simulator import Simulator


class AbaHost(Process):
    def __init__(self, pid, config):
        super().__init__(pid)
        self.decisions = {}
        self.aba = BinaryAgreement(self, config,
                                   self.decisions.__setitem__)


class AcsHost(Process):
    def __init__(self, pid, config):
        super().__init__(pid)
        self.outputs = {}
        self.acs = CommonSubset(self, config, self.outputs.__setitem__)


def test_bench_one_aba_instance(benchmark):
    counter = [0]

    def run_instance():
        counter[0] += 1
        seed = counter[0]
        config = SystemConfig(n=4, t=1, seed=seed)
        simulator = Simulator(scheduler=RandomScheduler(seed))
        hosts = [simulator.add_process(AbaHost(server_id(j), config))
                 for j in range(1, 5)]
        for host, bit in zip(hosts, (1, 0, 1, 0)):
            host.aba.provide_input("x", bit)
        simulator.run(max_steps=600_000)
        return hosts[0].decisions["x"]

    value = benchmark(run_instance)
    assert value in (0, 1)


def test_bench_one_acs_session(benchmark):
    counter = [0]

    def run_session():
        counter[0] += 1
        seed = counter[0]
        config = SystemConfig(n=4, t=1, seed=seed)
        simulator = Simulator(scheduler=RandomScheduler(seed))
        hosts = [simulator.add_process(AcsHost(server_id(j), config))
                 for j in range(1, 5)]
        for j, host in enumerate(hosts, start=1):
            host.acs.propose("s", f"p{j}")
        simulator.run(max_steps=800_000)
        return hosts[0].outputs["s"]

    accepted = benchmark(run_session)
    assert len(accepted) >= 3
