"""F12 — large-value broadcast: Bracha O(n^2|F|) vs AVID-RBC O(n|F|)."""

from repro.experiments import broadcast_comparison


def test_f12_broadcast_comparison(once):
    rows = once(lambda: broadcast_comparison.run(ts=(1, 2, 3, 4)))
    print()
    print(broadcast_comparison.render(rows))
    # AVID-RBC always wins on bulk data...
    for row in rows:
        assert row.avid_rbc_bytes < row.bracha_bytes
    # ...and the advantage grows with n (quadratic vs linear in n).
    ratios = [row.ratio for row in rows]
    assert ratios == sorted(ratios)
    assert ratios[-1] > 2 * ratios[0] / 1.5
