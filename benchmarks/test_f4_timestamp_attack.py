"""F4 — timestamp growth under attack (non-skipping, Section 3.4)."""

from repro.experiments import timestamp_attack


def test_f4_timestamp_attack(once):
    outcomes = once(lambda: timestamp_attack.run(t=1, honest_writes=5))
    print()
    print(timestamp_attack.render(outcomes))
    by_key = {(o.scenario, o.protocol): o for o in outcomes}

    # Corrupted servers inflate timestamps in Atomic and Martin...
    assert not by_key[("server-inflation", "atomic")].non_skipping
    assert not by_key[("server-inflation", "martin")].non_skipping
    # ...but not in AtomicNS (threshold signatures) or Bazzi-Ding
    # ((t+1)-st largest at n > 4t).
    assert by_key[("server-inflation", "atomic_ns")].non_skipping
    assert by_key[("server-inflation", "bazzi_ding")].non_skipping

    # Corrupted clients skip in Atomic and Bazzi-Ding, never in AtomicNS.
    assert not by_key[("client-skipping", "atomic")].non_skipping
    assert not by_key[("client-skipping", "bazzi_ding")].non_skipping
    assert by_key[("client-skipping", "atomic_ns")].non_skipping

    # Strongest AtomicNS client attack (valid-pair replay) stays bounded.
    replay = by_key[("client-replay", "atomic_ns")]
    assert replay.non_skipping
    assert replay.max_timestamp == replay.effected_writes
