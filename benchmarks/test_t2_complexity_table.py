"""T2 — Section 3.5 complexity analysis: measured vs analytic model."""

from repro.experiments import complexity_table


def test_t2_complexity_table(once):
    rows = once(lambda: complexity_table.run(
        ts=(1, 2, 3), value_sizes=(1024, 16384, 131072)))
    print()
    print(complexity_table.render(rows))
    for row in rows:
        # The model captures the growth in both n and |F|: measured and
        # predicted stay within a small constant of each other.
        assert 0.5 < row.write_bytes_ratio < 2.0, row
        assert 0.5 < row.read_bytes_ratio < 2.0, row
        assert 0.8 < row.write_messages_ratio < 1.25, row
