"""F3 — message complexity growth: O(n^2) writes vs O(n) for replication."""

from repro.experiments import message_complexity


def test_f3_message_complexity(once):
    rows = once(lambda: message_complexity.run(ts=(1, 2, 3, 4)))
    print()
    print(message_complexity.render(rows))
    series = message_complexity.coefficients(rows)
    # Quadratic law: write_messages / n^2 is near-constant for Atomic(NS).
    for protocol in ("atomic", "atomic_ns"):
        coefficients = series[protocol]
        assert max(coefficients) / min(coefficients) < 1.6, protocol
    # Linear law: replication's write_messages / n^2 decays ~ 1/n.
    martin = series["martin"]
    assert martin[-1] < martin[0] / 2.5
    # Reads are O(n) for everyone.
    for row in rows:
        assert row.read_per_n < 4.0
