"""F5 — the resilience matrix: optimal resilience n > 3t (Theorem 2)."""

from repro.experiments import resilience_matrix


def test_f5_resilience_matrix(once):
    cells = once(lambda: resilience_matrix.run(ts=(1, 2)))
    print()
    print(resilience_matrix.render(cells))
    for cell in cells:
        if cell.verdict == resilience_matrix.NOT_APPLICABLE:
            # The n > 4t protocols cannot deploy at n = 3t + 1.
            assert cell.protocol in ("bazzi_ding", "goodson")
            continue
        if cell.faulty <= cell.t:
            assert cell.verdict == resilience_matrix.OK, cell
        else:
            # Beyond the bound the all-crash adversary denies quorums.
            assert cell.verdict == resilience_matrix.STALLED, cell
        # Atomicity must never be violated, within or beyond the bound
        # (beyond it we lose liveness first under this fault mix).
        assert cell.verdict != resilience_matrix.VIOLATION
