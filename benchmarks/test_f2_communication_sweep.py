"""F2 — communication per operation vs value size; read crossover."""

from repro.experiments import communication_sweep


def test_f2_communication_sweep(once):
    points = once(lambda: communication_sweep.run(
        value_sizes=(64, 512, 4096, 32768, 262144)))
    print()
    print(communication_sweep.render(points))
    crossover = communication_sweep.read_crossover(points)
    print(f"read crossover at |F| = {crossover} B")
    # Erasure-coded reads beat replication from small-KiB values upward.
    assert 0 < crossover <= 4096
    by_key = {(p.label, p.value_size): p for p in points}
    large = 262144
    # At large |F|, erasure reads move ~n/k*|F| vs replication's ~n*|F|.
    assert by_key[("atomic_ns/vector", large)].read_bytes * 3 < \
        by_key[("martin", large)].read_bytes
    # The Merkle variant cuts the fixed commitment overhead on writes.
    small = 64
    assert by_key[("atomic_ns/merkle", small)].write_bytes < \
        by_key[("atomic_ns/vector", small)].write_bytes
