"""Substrate microbenchmarks (real timing): erasure coding, hashing,
dispersal, and end-to-end register operations in the simulator.

These quantify the simulation's own costs — useful when sizing larger
experiments — and the relative cost of the two commitment schemes.
"""

import os

import pytest

from repro.cluster import build_cluster
from repro.config import SystemConfig
from repro.crypto.commitment import MerkleCommitment, VectorCommitment
from repro.erasure.coder import ErasureCoder
from repro.net.schedulers import RandomScheduler

VALUE_64K = os.urandom(64 * 1024)


@pytest.mark.parametrize("k", [3, 5])
def test_bench_erasure_encode_64k(benchmark, k):
    coder = ErasureCoder(7, k)
    blocks = benchmark(lambda: coder.encode(VALUE_64K))
    assert len(blocks) == 7


def test_bench_erasure_decode_parity_path(benchmark):
    coder = ErasureCoder(7, 5)
    blocks = coder.encode(VALUE_64K)
    pairs = [(j, blocks[j - 1]) for j in (3, 4, 5, 6, 7)]  # needs inversion
    value = benchmark(lambda: coder.decode(pairs))
    assert value == VALUE_64K


def test_bench_erasure_decode_systematic_path(benchmark):
    coder = ErasureCoder(7, 5)
    blocks = coder.encode(VALUE_64K)
    pairs = [(j, blocks[j - 1]) for j in (1, 2, 3, 4, 5)]  # fast path
    value = benchmark(lambda: coder.decode(pairs))
    assert value == VALUE_64K


def test_bench_erasure_gf65536_encode(benchmark):
    """Large-cluster field: (40, 28) over GF(2^16)."""
    coder = ErasureCoder(40, 28, field="gf65536")
    blocks = benchmark(lambda: coder.encode(VALUE_64K))
    assert len(blocks) == 40


@pytest.mark.parametrize("scheme_cls", [VectorCommitment, MerkleCommitment],
                         ids=["vector", "merkle"])
def test_bench_commitment(benchmark, scheme_cls):
    coder = ErasureCoder(7, 5)
    blocks = coder.encode(VALUE_64K)
    scheme = scheme_cls(7)
    commitment, witnesses = benchmark(lambda: scheme.commit(blocks))
    assert scheme.verify(commitment, 1, blocks[0], witnesses[0])


@pytest.mark.parametrize("protocol", ["atomic", "atomic_ns", "martin"])
def test_bench_end_to_end_write(benchmark, protocol):
    """Simulated wall-clock cost of one isolated write (n=4, 4 KiB)."""
    value = os.urandom(4096)
    counter = [0]

    def write_once():
        cluster = build_cluster(SystemConfig(n=4, t=1), protocol=protocol,
                                num_clients=1,
                                scheduler=RandomScheduler(counter[0]))
        counter[0] += 1
        return cluster.write(1, "reg", "w", value)

    handle = benchmark(write_once)
    assert handle.done


def test_bench_end_to_end_read(benchmark):
    value = os.urandom(4096)
    cluster = build_cluster(SystemConfig(n=4, t=1), protocol="atomic_ns",
                            num_clients=1, scheduler=RandomScheduler(0))
    cluster.write(1, "reg", "w", value)
    counter = [0]

    def read_once():
        counter[0] += 1
        return cluster.read(1, "reg", f"r{counter[0]}")

    handle = benchmark(read_once)
    assert handle.result == value
