"""F1 — storage blow-up vs system size and vs erasure threshold k."""

from repro.experiments import storage_blowup


def test_f1_storage_blowup_vs_n(once):
    rows = once(lambda: storage_blowup.run(ts=(1, 2, 3, 4),
                                           value_size=8192))
    print()
    print(storage_blowup.render(rows))
    erasure = [row for row in rows if row.protocol == "atomic_ns"]
    replicated = [row for row in rows if row.protocol == "martin"]
    # Replication grows linearly with n; erasure coding stays bounded.
    assert replicated[-1].measured_blowup > 3 * replicated[0].measured_blowup / 1.5
    assert all(row.measured_blowup < 3.0 for row in erasure)
    for erasure_row, replicated_row in zip(erasure, replicated):
        assert erasure_row.measured_blowup < \
            replicated_row.measured_blowup / 1.8


def test_f1b_storage_blowup_vs_k(once):
    rows = once(lambda: storage_blowup.run_k_sweep(n=10, t=3,
                                                   value_size=8192))
    print()
    print(storage_blowup.render(
        rows, title="F1b: storage blow-up vs erasure threshold k"))
    blowups = [row.measured_blowup for row in rows]
    # Monotone: larger k means smaller blocks; k = 1 is replication-level.
    assert blowups == sorted(blowups, reverse=True)
    assert blowups[0] > 9.0 and blowups[-1] < 2.5
