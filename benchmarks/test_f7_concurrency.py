"""F7 — wait-freedom and atomicity under concurrent writers."""

from repro.experiments import concurrency_sweep


def test_f7_concurrency(once):
    rows = once(lambda: concurrency_sweep.run(
        writer_counts=(1, 2, 3, 4), readers=4, writes_per_writer=2))
    print()
    print(concurrency_sweep.render(rows))
    for row in rows:
        # Every operation terminates (wait-freedom) and histories
        # linearize at every concurrency level.
        assert row.all_terminated, row
        assert row.atomic, row
        # The listeners feed readers at least their initial reply.
        assert row.value_messages_per_read >= 1.0
