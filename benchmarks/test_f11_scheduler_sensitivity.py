"""F11 — asynchrony sensitivity: identical guarantees under every
adversarial schedule, and leaderless load balance."""

from repro.experiments import scheduler_sensitivity


def test_f11_scheduler_sensitivity(once):
    rows = once(lambda: scheduler_sensitivity.run(writes=4, reads=4))
    print()
    print(scheduler_sensitivity.render(rows))
    for row in rows:
        # Liveness and atomicity are schedule-independent.
        assert row.terminated, row.scheduler
        assert row.atomic, row.scheduler
        # Leaderless: no server carries disproportionate load.
        assert row.load_imbalance < 1.5, row.scheduler
