"""F8 — threshold-signature microbenchmarks (real timing).

These are genuine pytest-benchmark timings of the cryptographic
operations AtomicNS adds per write: share signing, share verification,
combination, and verification — for the Shoup RSA backend and the ideal
backend.
"""

import random

import pytest

from repro.crypto.rsa import precomputed_modulus
from repro.crypto.threshold import IdealThresholdScheme, ShoupThresholdScheme
from repro.experiments import threshold_bench

MESSAGE = ("reg", 42)


def _shoup(n=4, t=1, bits=256):
    return ShoupThresholdScheme(n, t, modulus=precomputed_modulus(bits),
                                rng=random.Random(0))


def test_f8_table(once):
    costs = once(lambda: threshold_bench.run(
        group_sizes=(4, 7, 10), prime_bits=(128, 256, 512), repeat=3))
    print()
    print(threshold_bench.render(costs))
    by_backend = {}
    for cost in costs:
        by_backend.setdefault(cost.backend, []).append(cost)
    # Shoup costs grow with the modulus; ideal is orders cheaper.
    for n_index in range(3):
        assert by_backend["shoup-1024b"][n_index].sign_ms > \
            by_backend["shoup-256b"][n_index].sign_ms
        assert by_backend["ideal"][n_index].sign_ms < \
            by_backend["shoup-256b"][n_index].sign_ms


@pytest.mark.parametrize("bits", [128, 256, 512])
def test_bench_shoup_sign(benchmark, bits):
    scheme = _shoup(bits=bits)
    benchmark(lambda: scheme.sign(MESSAGE, 1))


def test_bench_shoup_verify_share(benchmark):
    scheme = _shoup()
    share = scheme.sign(MESSAGE, 1)
    benchmark(lambda: scheme.verify_share(MESSAGE, share))
    assert scheme.verify_share(MESSAGE, share)


def test_bench_shoup_combine(benchmark):
    scheme = _shoup()
    shares = [scheme.sign(MESSAGE, j) for j in (1, 2)]
    signature = benchmark(lambda: scheme.combine(MESSAGE, shares))
    assert scheme.verify(MESSAGE, signature)


def test_bench_shoup_verify(benchmark):
    scheme = _shoup()
    signature = scheme.combine(
        MESSAGE, [scheme.sign(MESSAGE, j) for j in (1, 2)])
    assert benchmark(lambda: scheme.verify(MESSAGE, signature))


def test_bench_ideal_sign(benchmark):
    scheme = IdealThresholdScheme(4, 1)
    benchmark(lambda: scheme.sign(MESSAGE, 1))


def test_bench_ideal_combine(benchmark):
    scheme = IdealThresholdScheme(4, 1)
    shares = [scheme.sign(MESSAGE, j) for j in (1, 2)]
    signature = benchmark(lambda: scheme.combine(MESSAGE, shares))
    assert scheme.verify(MESSAGE, signature)
