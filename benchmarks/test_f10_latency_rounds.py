"""F10 — operation latency in message rounds (critical-path depth)."""

from repro.experiments import latency_rounds


def test_f10_latency_rounds(once):
    rows = once(lambda: latency_rounds.run(t=1))
    print()
    print(latency_rounds.render(rows))
    by_protocol = {row.protocol: row for row in rows}
    # Replication-style writes: two round trips.
    assert by_protocol["martin"].write_rounds == 4
    assert by_protocol["goodson"].write_rounds == 4
    # Write-time verification adds the echo/ready rounds (+2, +3 when
    # the completing ack rode a ready-amplification path)...
    assert by_protocol["atomic"].write_rounds in (6, 7)
    # ...and non-skipping timestamps add the share round (+1).
    assert by_protocol["atomic_ns"].write_rounds in (7, 8)
    assert by_protocol["atomic_ns"].write_rounds > \
        by_protocol["martin"].write_rounds
    # Reads are a single round trip everywhere (in the isolated case).
    assert all(row.read_rounds == 2 for row in rows)


def test_f10b_goodson_rollback_latency(once):
    rows = once(lambda: latency_rounds.run_goodson_rollback_latency(
        counts=(0, 1, 2, 4)))
    print()
    print(latency_rounds.render_rollback(rows))
    for row in rows:
        assert row.read_rounds == 2 + 2 * row.poisonous_writes
