"""T1 — the protocol comparison table (paper Sections 1, 1.1, 3.5).

Regenerates the headline comparison of Martin et al., Goodson et al.,
Bazzi-Ding, and Protocols Atomic/AtomicNS: resilience, non-skipping
timestamps, Byzantine-client tolerance, storage blow-up, and isolated
operation costs.
"""

from repro.experiments import comparison_table


def test_t1_comparison_table(once):
    rows = once(lambda: comparison_table.run(t=1, value_size=4096))
    print()
    print(comparison_table.render(rows))
    by_protocol = {row.protocol: row for row in rows}

    # The paper's claims, as assertions on the regenerated table:
    ours = by_protocol["atomic_ns"]
    assert ours.resilience == "n > 3t"
    assert ours.non_skipping and ours.byzantine_clients
    # Only Bazzi-Ding also has non-skipping timestamps — at n > 4t.
    assert by_protocol["bazzi_ding"].non_skipping
    assert by_protocol["bazzi_ding"].resilience == "n > 4t"
    # Storage: erasure coding ~n/(n-t) vs replication n.
    assert ours.measured.storage_blowup < 2.0
    assert by_protocol["martin"].measured.storage_blowup > 3.5
    # Reads move ~|F|*n/k bytes instead of ~n*|F|.
    assert ours.measured.read.message_bytes < \
        by_protocol["martin"].measured.read.message_bytes
