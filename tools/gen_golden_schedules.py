"""Regenerate the golden-schedule fixtures (tests/fixtures/golden_schedules.json).

The fixtures pin, for a handful of seeded workloads, a canonical digest of
the simulator's full event log (deliveries included).  The golden-schedule
regression tests replay the same workloads and assert the digests match,
which proves scheduling-core refactors (the pending-bag, scheduler
incrementalisation) are *schedule-preserving*: for a fixed seed the refactor
may not change a single delivery choice.

Run from the repo root::

    PYTHONPATH=src python tools/gen_golden_schedules.py

Only regenerate when a schedule change is *intended* (e.g. a new scheduler
feature that legitimately alters delivery order); note the reason in the
commit message.
"""

from __future__ import annotations

import hashlib
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.cluster import build_cluster  # noqa: E402
from repro.common.ids import server_id  # noqa: E402
from repro.config import SystemConfig  # noqa: E402
from repro.net.schedulers import (  # noqa: E402
    FifoScheduler,
    RandomScheduler,
    SlowPartiesScheduler,
)
from repro.workloads.generator import random_workload, run_workload  # noqa: E402

FIXTURE = REPO / "tests" / "fixtures" / "golden_schedules.json"


def _make_scheduler(spec: dict):
    kind = spec["scheduler"]
    if kind == "fifo":
        return FifoScheduler()
    if kind == "random":
        return RandomScheduler(spec["scheduler_seed"])
    if kind == "slow-parties":
        victims = [server_id(j) for j in spec["slow_servers"]]
        return SlowPartiesScheduler(victims, seed=spec["scheduler_seed"])
    raise ValueError(f"unknown scheduler spec {kind!r}")


def run_case(spec: dict, prepare=None) -> dict:
    """Run one seeded workload and return its canonical schedule record.

    ``prepare(cluster)``, when given, runs after the cluster is built and
    before the workload starts — the chaos determinism tests use it to
    attach an empty-plan fault injector and prove the interposition hook
    is byte-identical to no hook at all.
    """
    config = SystemConfig(n=spec["n"], t=spec["t"], seed=spec["seed"])
    cluster = build_cluster(config, protocol=spec["protocol"],
                            num_clients=spec["clients"],
                            scheduler=_make_scheduler(spec))
    # Log every delivery, not just input/output actions: the golden digest
    # must pin the exact delivery order, not merely its observable effects.
    cluster.simulator._record_deliveries = True
    if prepare is not None:
        prepare(cluster)
    operations = random_workload(spec["clients"], writes=spec["writes"],
                                 reads=spec["reads"], seed=spec["seed"])
    run_workload(cluster, "reg", operations, seed=spec["seed"])
    lines = [repr(event) for event in cluster.simulator.event_log]
    blob = "\n".join(lines).encode()
    return {
        "spec": spec,
        "events": len(lines),
        "sha256": hashlib.sha256(blob).hexdigest(),
        "head": lines[:2],
        "tail": lines[-2:],
    }


CASES = [
    {"name": "fifo_atomic_ns", "scheduler": "fifo", "protocol": "atomic_ns",
     "n": 4, "t": 1, "clients": 2, "writes": 3, "reads": 3, "seed": 7},
    {"name": "random_atomic_ns", "scheduler": "random",
     "scheduler_seed": 11, "protocol": "atomic_ns",
     "n": 4, "t": 1, "clients": 2, "writes": 3, "reads": 3, "seed": 11},
    {"name": "random_atomic", "scheduler": "random",
     "scheduler_seed": 5, "protocol": "atomic",
     "n": 7, "t": 2, "clients": 2, "writes": 2, "reads": 2, "seed": 5},
    {"name": "priority_atomic_ns", "scheduler": "slow-parties",
     "scheduler_seed": 13, "slow_servers": [1], "protocol": "atomic_ns",
     "n": 4, "t": 1, "clients": 2, "writes": 3, "reads": 3, "seed": 13},
]


def main() -> int:
    records = [run_case(dict(spec)) for spec in CASES]
    document = {
        "comment": "golden schedule digests; regenerate with "
                   "tools/gen_golden_schedules.py only when a schedule "
                   "change is intended",
        "cases": records,
    }
    FIXTURE.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n",
                       encoding="utf-8")
    for record in records:
        print(f"{record['spec']['name']:>20}: {record['events']:5d} events "
              f"{record['sha256'][:16]}")
    print(f"wrote {FIXTURE}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
